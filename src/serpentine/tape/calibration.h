// Key-point calibration: recover a cartridge's key points by timing locate
// operations, as the paper does for real tapes ("Algorithms to determine
// the precise segment numbers of the key points are given in [HS96]. In
// essence, each dip is found by measuring locate times from the preceding
// dip.", §3).
//
// The calibrator treats the drive as a black box exposing only
// locate_time(src, dst) measurements plus the tape's track count, section
// count and capacity — exactly what a host can obtain over SCSI. It
// exploits the signature structure of the locate function:
//
//   * from a fixed probe position, locate time rises piecewise-linearly
//     within a section and drops abruptly at each dip (the drop is ~5 s on
//     forward tracks, ~25 s on reverse tracks);
//   * therefore each dip segment is found by binary search for the
//     discontinuity locate(p, x-1) - locate(p, x) > threshold.
//
// The recovered key points are what parameterize a scheduling model for
// that cartridge; the paper's Fig 9 shows what happens when they are wrong.
#ifndef SERPENTINE_TAPE_CALIBRATION_H_
#define SERPENTINE_TAPE_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "serpentine/tape/locate_model.h"
#include "serpentine/util/statusor.h"

namespace serpentine::tape {

/// Calibration tuning.
struct CalibrationOptions {
  /// Minimum abrupt drop (seconds) that identifies a dip. Must sit between
  /// measurement noise and the smallest real drop (~5.5 s on forward
  /// tracks).
  double dip_threshold_seconds = 3.0;
  /// Number of times each comparison is measured; medians defeat
  /// measurement noise on a real (or simulated-noisy) drive.
  int probes_per_comparison = 3;
  /// Within-section slope of the locate curve (read transport speed per
  /// segment) used to detrend comparisons across the search window. A
  /// drive-family constant: 15.5 s per ~704-segment section on the
  /// DLT4000. Density jitter of a few percent is tolerated.
  double seconds_per_segment = 15.5 / 704.0;
  /// Robust fit: probes farther than this from a comparison's median are
  /// treated as gross outliers (a stuck locate, a retried SCSI command, a
  /// drive soft reset mid-measurement) and discarded before the final
  /// median is taken. The default sits far above honest measurement noise
  /// (sub-second) but below a reset-magnitude glitch (~25 s), so clean and
  /// mildly noisy drives calibrate bit-identically with or without
  /// trimming. Set <= 0 to disable.
  double outlier_trim_seconds = 10.0;
  /// When trimming discards more than half of a comparison's probes, the
  /// comparison draws this many extra rounds of probes_per_comparison
  /// measurements (accumulated, then re-trimmed) before accepting the
  /// trimmed median. Bounds worst-case measurement cost on a badly
  /// glitching drive.
  int max_remeasure_rounds = 2;
};

/// Result of calibrating one cartridge.
struct CalibrationResult {
  /// key_segment[t][r]: recovered segment number of reading-order key
  /// point r in track t (k_0 is the track start).
  std::vector<std::vector<SegmentId>> key_segments;
  /// Total locate-time measurements issued.
  int64_t measurements = 0;
};

/// Recovers all key points of the mounted cartridge by timing locates
/// against `drive` (any LocateModel implementation — typically a
/// sim::PhysicalDrive standing in for real hardware).
///
/// `track_starts` must hold the first segment of each track plus a final
/// entry equal to the capacity (obtainable from the drive's partition
/// info / a coarse pre-pass); `sections_per_track` is a drive-family
/// constant (14 for the DLT4000).
serpentine::StatusOr<CalibrationResult> CalibrateKeyPoints(
    const LocateModel& drive, const std::vector<SegmentId>& track_starts,
    int sections_per_track, const CalibrationOptions& options = {});

/// Convenience overload taking the truth geometry's track layout (the
/// common case in simulation: track starts are known, dips are not).
serpentine::StatusOr<CalibrationResult> CalibrateKeyPoints(
    const LocateModel& drive, const TapeGeometry& layout,
    const CalibrationOptions& options = {});

}  // namespace serpentine::tape

#endif  // SERPENTINE_TAPE_CALIBRATION_H_
