// Core identifier types for serpentine tape addressing.
//
// Terminology follows the paper (Hillyer & Silberschatz, SIGMOD '96 §3):
//  * segment          — fixed-size chunk (32 KB on the paper's DLT4000);
//                       its absolute segment number is the logical block id.
//  * track            — one serpentine pass down (even, "forward") or up
//                       (odd, "reverse") the physical tape.
//  * section          — the portion of a track between two adjacent key
//                       points (a "dip" and the following peak).
//  * key point        — segment number of the start of each section in
//                       reading order: the track start plus the 13 dips.
//  * physical section — sections indexed by physical position: section 0 is
//                       closest to the physical beginning of tape (BOT),
//                       regardless of track direction.
//  * reading section  — sections indexed in the order the track reads them:
//                       equal to the physical index on forward tracks and
//                       reversed (13 - physical) on reverse tracks.
#ifndef SERPENTINE_TAPE_TYPES_H_
#define SERPENTINE_TAPE_TYPES_H_

#include <cstdint>

namespace serpentine::tape {

/// Absolute segment number (logical block number): 0 for the first chunk
/// written to the tape.
using SegmentId = int64_t;

/// Physical position along the tape, in *section units*: 0.0 at the physical
/// beginning of tape, `TapeParams::physical_sections` at the physical end.
using PhysicalPos = double;

/// Physical coordinate of a segment: the serpentine analogue of a disk's
/// (cylinder, track, sector) triple (paper §3).
struct Coord {
  /// Track number, 0-based; even tracks read physically forward.
  int track = 0;
  /// Physical section within the track (0 nearest BOT).
  int physical_section = 0;
  /// Segment index within the section, counted by physical position:
  /// index 0 is nearest BOT on both forward and reverse tracks, so
  /// (t, a, b) and (t', a, b) are physically nearby for any t, t'.
  int index = 0;

  bool operator==(const Coord&) const = default;
};

}  // namespace serpentine::tape

#endif  // SERPENTINE_TAPE_TYPES_H_
