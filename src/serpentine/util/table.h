// Aligned-column table printer used by the bench harnesses to emit the
// rows/series of the paper's figures in a stable, parseable layout.
#ifndef SERPENTINE_UTIL_TABLE_H_
#define SERPENTINE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace serpentine {

/// Collects rows of string cells and renders them with columns padded to the
/// widest cell. The first row added is treated as the header.
class Table {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; rows may differ in arity (short rows pad empty).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  /// Renders the table with two-space column separation and a rule under
  /// the header.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace serpentine

#endif  // SERPENTINE_UTIL_TABLE_H_
