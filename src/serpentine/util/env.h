// Environment knobs shared by the bench harnesses.
#ifndef SERPENTINE_UTIL_ENV_H_
#define SERPENTINE_UTIL_ENV_H_

#include <cstdint>

namespace serpentine {

/// How aggressively the benches down-scale the paper's trial counts.
enum class BenchScale {
  kSmoke,    ///< SERPENTINE_SCALE=smoke: minimal trials, seconds per bench.
  kDefault,  ///< unset: laptop-sized trials, tens of seconds per bench.
  kFull,     ///< SERPENTINE_SCALE=full: the paper's trial counts.
};

/// Reads SERPENTINE_SCALE from the environment (see BenchScale).
BenchScale GetBenchScale();

/// Worker-thread count for parallel trial loops: `requested` when positive,
/// else SERPENTINE_THREADS when set to a positive integer, else all
/// hardware threads. Always at least 1. Thread count never changes
/// simulation results — only wall-clock time (see docs/performance.md).
int ResolveThreadCount(int requested);

/// Scales a paper trial count to the active BenchScale: full keeps it,
/// default divides by `default_divisor`, smoke divides by `smoke_divisor`;
/// the result is at least `min_trials`.
int64_t ScaledTrials(int64_t paper_trials, int64_t default_divisor = 500,
                     int64_t smoke_divisor = 10000, int64_t min_trials = 4);

}  // namespace serpentine

#endif  // SERPENTINE_UTIL_ENV_H_
