// Streaming statistics used by the simulation experiments: the paper reports
// mean and standard deviation of schedule execution times per configuration.
#ifndef SERPENTINE_UTIL_STATS_H_
#define SERPENTINE_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace serpentine {

/// Welford-style streaming accumulator: mean, variance, extrema over a
/// sequence of doubles without storing them.
class Accumulator {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator's observations into this one.
  void Merge(const Accumulator& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp into the
/// first/last bucket. Used to inspect locate-time distributions.
class Histogram {
 public:
  /// Creates `buckets` equal-width buckets spanning [lo, hi).
  Histogram(double lo, double hi, int buckets);

  /// Adds one observation.
  void Add(double x);

  int buckets() const { return static_cast<int>(counts_.size()); }
  int64_t bucket_count(int i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(int i) const { return lo_ + width_ * i; }
  int64_t total() const { return total_; }

  /// Value below which `q` (in [0,1]) of the mass lies, interpolated within
  /// the containing bucket.
  double Quantile(double q) const;

  /// Multi-line "lo..hi count" rendering, for debugging.
  std::string ToString() const;

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace serpentine

#endif  // SERPENTINE_UTIL_STATS_H_
