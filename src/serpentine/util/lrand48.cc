// Lrand48 is header-only; this file exists so the util library always has a
// translation unit and to anchor the vtable-free types' debug symbols.
#include "serpentine/util/lrand48.h"
