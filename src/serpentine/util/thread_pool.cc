#include "serpentine/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "serpentine/util/env.h"

namespace serpentine {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue even during shutdown so every scheduled task (and
      // the ParallelFor completion counts behind them) runs exactly once.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked intentionally: worker threads may still be parked in the pool
  // at static destruction time.
  static ThreadPool* pool = new ThreadPool(ResolveThreadCount(0));
  return *pool;
}

void ParallelFor(ThreadPool* pool, int64_t shards, int max_workers,
                 const std::function<void(int64_t)>& fn) {
  if (shards <= 0) return;
  int workers = pool == nullptr
                    ? 1
                    : static_cast<int>(std::min<int64_t>(
                          shards, std::min(max_workers, pool->size())));
  if (workers <= 1) {
    for (int64_t i = 0; i < shards; ++i) fn(i);
    return;
  }

  struct State {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    int active = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->active = workers;

  auto body = [state, shards, &fn] {
    try {
      for (;;) {
        int64_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shards) break;
        fn(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->active;
    }
    state->done.notify_one();
  };

  // The calling thread is one of the workers, so a pool of k threads plus
  // the caller still executes with `workers` concurrency at most and the
  // call degrades gracefully if pool threads are busy elsewhere.
  for (int w = 1; w < workers; ++w) pool->Schedule(body);
  body();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->active == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace serpentine
