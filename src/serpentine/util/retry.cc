#include "serpentine/util/retry.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "serpentine/util/lrand48.h"

namespace serpentine {

Status ValidateRetryPolicy(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    return InvalidArgumentError("RetryPolicy: max_attempts must be >= 1, got " +
                                std::to_string(policy.max_attempts));
  }
  if (!std::isfinite(policy.initial_backoff_seconds) ||
      policy.initial_backoff_seconds < 0.0) {
    return InvalidArgumentError(
        "RetryPolicy: initial_backoff_seconds must be finite and >= 0, got " +
        std::to_string(policy.initial_backoff_seconds));
  }
  if (!std::isfinite(policy.backoff_multiplier) ||
      policy.backoff_multiplier < 1.0) {
    return InvalidArgumentError(
        "RetryPolicy: backoff_multiplier must be finite and >= 1, got " +
        std::to_string(policy.backoff_multiplier));
  }
  if (std::isnan(policy.max_backoff_seconds) ||
      policy.max_backoff_seconds < 0.0) {
    return InvalidArgumentError(
        "RetryPolicy: max_backoff_seconds must be >= 0 and not NaN, got " +
        std::to_string(policy.max_backoff_seconds));
  }
  if (policy.max_backoff_seconds < policy.initial_backoff_seconds) {
    return InvalidArgumentError(
        "RetryPolicy: max_backoff_seconds (" +
        std::to_string(policy.max_backoff_seconds) +
        ") must be >= initial_backoff_seconds (" +
        std::to_string(policy.initial_backoff_seconds) + ")");
  }
  if (!(policy.jitter_fraction >= 0.0) || policy.jitter_fraction >= 1.0) {
    return InvalidArgumentError(
        "RetryPolicy: jitter_fraction must be in [0, 1), got " +
        std::to_string(policy.jitter_fraction));
  }
  return OkStatus();
}

double BackoffSeconds(const RetryPolicy& policy, int retry_index) {
  if (retry_index < 0) return 0.0;
  if (policy.initial_backoff_seconds <= 0.0) return 0.0;
  // Guard the exponential against double overflow: pow can reach inf after
  // a few thousand attempts (and 0 * inf is NaN); computing in log space
  // decides "past the ceiling" exactly without ever forming the overflowing
  // product.
  double ceiling = std::max(policy.max_backoff_seconds, 0.0);
  double multiplier = std::max(policy.backoff_multiplier, 1.0);
  if (multiplier > 1.0) {
    double log_backoff = std::log(policy.initial_backoff_seconds) +
                         static_cast<double>(retry_index) *
                             std::log(multiplier);
    if (log_backoff >= std::log(std::max(ceiling, 1e-300))) return ceiling;
  }
  double backoff = policy.initial_backoff_seconds *
                   std::pow(multiplier, static_cast<double>(retry_index));
  if (!std::isfinite(backoff)) return ceiling;
  backoff = std::min(backoff, ceiling);
  return std::max(backoff, 0.0);
}

double BackoffSeconds(const RetryPolicy& policy, int retry_index,
                      Lrand48* rng) {
  double backoff = BackoffSeconds(policy, retry_index);
  if (policy.jitter_fraction <= 0.0 || rng == nullptr) return backoff;
  double factor = 1.0 - policy.jitter_fraction +
                  2.0 * policy.jitter_fraction * rng->NextDouble();
  backoff *= factor;
  backoff = std::min(backoff, std::max(policy.max_backoff_seconds, 0.0));
  return std::max(backoff, 0.0);
}

double TotalBackoffSeconds(const RetryPolicy& policy) {
  double total = 0.0;
  for (int r = 0; r + 1 < policy.max_attempts; ++r) {
    total += BackoffSeconds(policy, r);
  }
  return total;
}

}  // namespace serpentine
