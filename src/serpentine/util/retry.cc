#include "serpentine/util/retry.h"

#include <algorithm>
#include <cmath>

namespace serpentine {

double BackoffSeconds(const RetryPolicy& policy, int retry_index) {
  if (retry_index < 0) return 0.0;
  double backoff = policy.initial_backoff_seconds *
                   std::pow(policy.backoff_multiplier,
                            static_cast<double>(retry_index));
  backoff = std::min(backoff, policy.max_backoff_seconds);
  return std::max(backoff, 0.0);
}

double TotalBackoffSeconds(const RetryPolicy& policy) {
  double total = 0.0;
  for (int r = 0; r + 1 < policy.max_attempts; ++r) {
    total += BackoffSeconds(policy, r);
  }
  return total;
}

}  // namespace serpentine
