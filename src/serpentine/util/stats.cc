#include "serpentine/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "serpentine/util/check.h"

namespace serpentine {

void Accumulator::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), width_((hi - lo) / buckets), counts_(buckets, 0) {
  SERPENTINE_CHECK_GT(buckets, 0);
  SERPENTINE_CHECK_GT(hi, lo);
}

void Histogram::Add(double x) {
  int i = static_cast<int>((x - lo_) / width_);
  i = std::clamp(i, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[i];
  ++total_;
}

double Histogram::Quantile(double q) const {
  SERPENTINE_CHECK_GE(q, 0.0);
  SERPENTINE_CHECK_LE(q, 1.0);
  if (total_ == 0) return lo_;
  double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      double frac =
          counts_[i] > 0 ? (target - cum) / static_cast<double>(counts_[i])
                         : 0.0;
      return bucket_lo(static_cast<int>(i)) + frac * width_;
    }
    cum = next;
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    std::snprintf(line, sizeof(line), "%10.2f..%10.2f %8lld\n", bucket_lo(i),
                  bucket_lo(i) + width_,
                  static_cast<long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace serpentine
