// Bit-exact reimplementation of the POSIX rand48 family used by the paper's
// simulations ("the Solaris lrand48() pseudorandom number generator").
// Reimplementing it (rather than calling the libc global-state version)
// makes every experiment reproducible and thread-independent.
#ifndef SERPENTINE_UTIL_LRAND48_H_
#define SERPENTINE_UTIL_LRAND48_H_

#include <cstdint>

namespace serpentine {

/// 48-bit linear congruential generator with the standard rand48
/// parameters: X' = (0x5DEECE66D * X + 0xB) mod 2^48.
///
/// `Next31()` matches POSIX lrand48() (non-negative 31-bit values) given the
/// same seeding as srand48(): high 32 bits of the state from the seed, low
/// 16 bits fixed at 0x330E.
class Lrand48 {
 public:
  /// Seeds as srand48(seed) would.
  explicit Lrand48(int32_t seed = 1) { Seed(seed); }

  /// Re-seeds; equivalent to srand48().
  void Seed(int32_t seed) {
    state_ = ((static_cast<uint64_t>(static_cast<uint32_t>(seed)) << 16) |
              0x330Eu) &
             kMask;
  }

  /// Re-seeds from a full 48-bit state (e.g. one produced by
  /// DeriveRand48State), bypassing the srand48 low-word convention.
  void SeedState(uint64_t state) { state_ = state & kMask; }

  /// Returns the next value in [0, 2^31), exactly as lrand48() would.
  int64_t Next31() {
    Step();
    return static_cast<int64_t>(state_ >> 17);
  }

  /// Returns the next value in [0, 1), exactly as drand48() would.
  double NextDouble() {
    Step();
    return static_cast<double>(state_) / static_cast<double>(kMask + 1);
  }

  /// Uniform integer in [0, bound) via rejection-free modulo of Next31().
  /// The paper's pseudocode draws segment numbers this way; the modulo bias
  /// for bound ~ 6e5 against 2^31 is < 0.03 % and irrelevant here.
  int64_t NextBounded(int64_t bound) { return Next31() % bound; }

  /// Exposes the raw 48-bit state, for tests.
  uint64_t state() const { return state_; }

 private:
  static constexpr uint64_t kMask = (uint64_t{1} << 48) - 1;
  static constexpr uint64_t kA = 0x5DEECE66Dull;
  static constexpr uint64_t kC = 0xBull;

  void Step() { state_ = (kA * state_ + kC) & kMask; }

  uint64_t state_;
};

/// Derives a decorrelated 48-bit rand48 state for trial/shard `index` of
/// base seed `seed`, via the splitmix64 finalizer. Giving every simulation
/// trial its own generator (instead of one stream shared across trials)
/// is what lets trials run on any thread in any order while producing
/// bit-identical statistics; 48-bit states make seed collisions between
/// trials negligible even at the paper's 100,000-trial counts.
inline uint64_t DeriveRand48State(int32_t seed, int64_t index) {
  uint64_t z = (static_cast<uint64_t>(static_cast<uint32_t>(seed)) << 32) ^
               static_cast<uint64_t>(index);
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z & ((uint64_t{1} << 48) - 1);
}

/// Splits one seed into a stream of decorrelated child seeds, for
/// experiments that need independent generators per trial.
class SeedSequence {
 public:
  explicit SeedSequence(int32_t seed) : gen_(seed) {}

  /// Returns the next child seed.
  int32_t Next() { return static_cast<int32_t>(gen_.Next31() & 0x7FFFFFFF); }

 private:
  Lrand48 gen_;
};

}  // namespace serpentine

#endif  // SERPENTINE_UTIL_LRAND48_H_
