// CHECK macros: invariant assertions that abort with a diagnostic. Active in
// all build types (these guard logic invariants, not performance paths).
#ifndef SERPENTINE_UTIL_CHECK_H_
#define SERPENTINE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace serpentine::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace serpentine::internal

/// Aborts the process with a diagnostic if `cond` is false.
#define SERPENTINE_CHECK(cond)                                        \
  do {                                                                \
    if (!(cond))                                                      \
      ::serpentine::internal::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (0)

/// Binary comparison checks; print the failing expression.
#define SERPENTINE_CHECK_EQ(a, b) SERPENTINE_CHECK((a) == (b))
#define SERPENTINE_CHECK_NE(a, b) SERPENTINE_CHECK((a) != (b))
#define SERPENTINE_CHECK_LT(a, b) SERPENTINE_CHECK((a) < (b))
#define SERPENTINE_CHECK_LE(a, b) SERPENTINE_CHECK((a) <= (b))
#define SERPENTINE_CHECK_GT(a, b) SERPENTINE_CHECK((a) > (b))
#define SERPENTINE_CHECK_GE(a, b) SERPENTINE_CHECK((a) >= (b))

#endif  // SERPENTINE_UTIL_CHECK_H_
