// Fixed-size worker pool for the simulation harness. Experiments fan
// independent trials out over a pool and merge per-shard accumulators in a
// fixed order, so the reported statistics are bit-identical no matter how
// many threads actually ran (see docs/performance.md for the contract).
#ifndef SERPENTINE_UTIL_THREAD_POOL_H_
#define SERPENTINE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace serpentine {

/// A fixed-size pool of worker threads consuming a FIFO task queue. The
/// destructor finishes every queued task, then joins the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks must not throw; wrap fallible work in
  /// ParallelFor, which captures and rethrows on the calling thread.
  void Schedule(std::function<void()> task);

  /// Process-wide pool sized by ResolveThreadCount(0) on first use
  /// (SERPENTINE_THREADS, or all hardware threads). Never destroyed before
  /// outstanding ParallelFor calls return.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(shard)` for every shard in [0, shards), using at most
/// `max_workers` pool workers, and blocks until all shards finish. Shards
/// are claimed dynamically, so callers must not depend on execution order;
/// determinism comes from each shard writing only its own output slot.
///
/// Runs inline on the calling thread when `pool` is null, `max_workers`
/// <= 1, or there is a single shard. If any shard throws, the first
/// exception is rethrown on the calling thread after all shards complete.
void ParallelFor(ThreadPool* pool, int64_t shards, int max_workers,
                 const std::function<void(int64_t)>& fn);

}  // namespace serpentine

#endif  // SERPENTINE_UTIL_THREAD_POOL_H_
