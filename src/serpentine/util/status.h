// Status: lightweight error-reporting type used across the serpentine
// libraries instead of exceptions. Modeled after the RocksDB/Abseil idiom:
// fallible operations return Status (or StatusOr<T>), callers must inspect.
#ifndef SERPENTINE_UTIL_STATUS_H_
#define SERPENTINE_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace serpentine {

/// Coarse error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  /// A request's deadline cannot (or could not) be met. Used by the online
  /// admission controller to shed infeasible work explicitly.
  kDeadlineExceeded,
  /// A resource is temporarily refusing work (e.g. an open circuit
  /// breaker); retrying after the indicated cooldown may succeed.
  kUnavailable,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK, or a code plus message.
///
/// The type is cheap to copy in the OK case (no allocation) and carries an
/// explanatory message otherwise. Use the factory helpers below rather than
/// constructing codes directly.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A message with
  /// code kOk is meaningless; prefer OkStatus().
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Explanatory message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns `status` with "<context>: " prefixed to its message (the code is
/// preserved), so callers can layer operation context onto a low-level
/// error: AnnotateStatus(OutOfRangeError("segment 9 off tape"), "LocateTo")
/// → "OutOfRange: LocateTo: segment 9 off tape". OK statuses pass through
/// unchanged.
Status AnnotateStatus(const Status& status, std::string_view context);

/// Factory helpers, one per error category.
inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnavailableError(std::string message);

}  // namespace serpentine

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define SERPENTINE_RETURN_IF_ERROR(expr)            \
  do {                                              \
    ::serpentine::Status _st = (expr);              \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // SERPENTINE_UTIL_STATUS_H_
