// StatusOr<T>: value-or-error return type companion to Status.
#ifndef SERPENTINE_UTIL_STATUSOR_H_
#define SERPENTINE_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "serpentine/util/check.h"
#include "serpentine/util/status.h"

namespace serpentine {

/// Holds either a T or a non-OK Status explaining why no T was produced.
///
/// Accessing value() on an error StatusOr aborts the process (programming
/// error), mirroring the Abseil contract.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. CHECK-fails if `status` is OK, since
  /// an OK StatusOr must carry a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    SERPENTINE_CHECK(!status_.ok());
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; the StatusOr must be OK.
  const T& value() const& {
    SERPENTINE_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SERPENTINE_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SERPENTINE_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace serpentine

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// binds the value to `lhs`. Usable in functions returning Status or
/// StatusOr.
#define SERPENTINE_ASSIGN_OR_RETURN(lhs, expr)       \
  SERPENTINE_ASSIGN_OR_RETURN_IMPL_(                 \
      SERPENTINE_CONCAT_(_statusor_, __LINE__), lhs, expr)

#define SERPENTINE_CONCAT_INNER_(a, b) a##b
#define SERPENTINE_CONCAT_(a, b) SERPENTINE_CONCAT_INNER_(a, b)
#define SERPENTINE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                      \
  if (!tmp.ok()) return tmp.status();                     \
  lhs = std::move(tmp).value()

#endif  // SERPENTINE_UTIL_STATUSOR_H_
