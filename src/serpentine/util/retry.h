// Retry-with-backoff policy shared by every recovery path (the recovering
// schedule executor, tape-library mount retries). The policy only *describes*
// the schedule; callers decide what a retry means and charge the backoff to
// their own clock (in simulation, backoff is virtual drive-idle time).
#ifndef SERPENTINE_UTIL_RETRY_H_
#define SERPENTINE_UTIL_RETRY_H_

namespace serpentine {

/// Bounded exponential backoff: attempt 0 is the initial try; each retry r
/// (r = 0 for the first retry) waits
///   min(initial_backoff_seconds * backoff_multiplier^r, max_backoff_seconds)
/// before trying again, up to max_attempts total attempts.
struct RetryPolicy {
  /// Total attempts including the first (so max_attempts - 1 retries).
  /// Must be >= 1; 1 means "never retry".
  int max_attempts = 4;
  double initial_backoff_seconds = 0.5;
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff interval.
  double max_backoff_seconds = 30.0;
};

/// Seconds to wait before retry number `retry_index` (0-based: the wait
/// between the failed first attempt and the second attempt has index 0).
/// Negative indices and degenerate policies clamp to zero.
double BackoffSeconds(const RetryPolicy& policy, int retry_index);

/// Total backoff charged by a full, exhausted retry schedule
/// (max_attempts - 1 retries).
double TotalBackoffSeconds(const RetryPolicy& policy);

/// Coarse classification of a failure for the retry decision: retrying a
/// permanent error wastes the whole backoff schedule, so recovery paths ask
/// first.
enum class ErrorClass {
  kRetryable,  ///< transient: worth another attempt (re-read, re-locate)
  kPermanent,  ///< sticky: report and move on (bad media, dead robot)
};

}  // namespace serpentine

#endif  // SERPENTINE_UTIL_RETRY_H_
