// Retry-with-backoff policy shared by every recovery path (the recovering
// schedule executor, tape-library mount retries). The policy only *describes*
// the schedule; callers decide what a retry means and charge the backoff to
// their own clock (in simulation, backoff is virtual drive-idle time).
#ifndef SERPENTINE_UTIL_RETRY_H_
#define SERPENTINE_UTIL_RETRY_H_

#include "serpentine/util/status.h"

namespace serpentine {

class Lrand48;

/// Bounded exponential backoff: attempt 0 is the initial try; each retry r
/// (r = 0 for the first retry) waits
///   min(initial_backoff_seconds * backoff_multiplier^r, max_backoff_seconds)
/// before trying again, up to max_attempts total attempts.
struct RetryPolicy {
  /// Total attempts including the first (so max_attempts - 1 retries).
  /// Must be >= 1; 1 means "never retry".
  int max_attempts = 4;
  double initial_backoff_seconds = 0.5;
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff interval.
  double max_backoff_seconds = 30.0;
  /// Optional jitter fraction in [0, 1): when nonzero and the caller
  /// supplies a seeded rng, each interval is scaled by a uniform factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction] (clamped to the ceiling).
  /// Jitter draws come from the caller's rng, so replications stay
  /// deterministic and decorrelated like every other seeded stream.
  double jitter_fraction = 0.0;
};

/// Rejects NaN/negative/inconsistent policies with a descriptive status:
/// max_attempts >= 1, finite non-negative backoffs, multiplier >= 1,
/// jitter_fraction in [0, 1).
Status ValidateRetryPolicy(const RetryPolicy& policy);

/// Seconds to wait before retry number `retry_index` (0-based: the wait
/// between the failed first attempt and the second attempt has index 0).
/// Negative indices and degenerate policies clamp to zero. The exponential
/// is guarded against double overflow: once
/// initial * multiplier^r exceeds (or overflows past) the ceiling, the
/// ceiling is returned — never inf or NaN, for any retry_index.
double BackoffSeconds(const RetryPolicy& policy, int retry_index);

/// As above, with deterministic seeded jitter: when
/// policy.jitter_fraction > 0 and `rng` is non-null, one NextDouble draw
/// scales the interval by [1 - jitter, 1 + jitter] (still capped at
/// max_backoff_seconds). With zero jitter or a null rng no draw is
/// consumed and the result equals the unjittered schedule.
double BackoffSeconds(const RetryPolicy& policy, int retry_index,
                      Lrand48* rng);

/// Total backoff charged by a full, exhausted retry schedule
/// (max_attempts - 1 retries), jitter-free.
double TotalBackoffSeconds(const RetryPolicy& policy);

/// Coarse classification of a failure for the retry decision: retrying a
/// permanent error wastes the whole backoff schedule, so recovery paths ask
/// first.
enum class ErrorClass {
  kRetryable,  ///< transient: worth another attempt (re-read, re-locate)
  kPermanent,  ///< sticky: report and move on (bad media, dead robot)
};

}  // namespace serpentine

#endif  // SERPENTINE_UTIL_RETRY_H_
