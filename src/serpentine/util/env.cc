#include "serpentine/util/env.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace serpentine {

BenchScale GetBenchScale() {
  const char* v = std::getenv("SERPENTINE_SCALE");
  if (v == nullptr) return BenchScale::kDefault;
  if (std::strcmp(v, "full") == 0) return BenchScale::kFull;
  if (std::strcmp(v, "smoke") == 0) return BenchScale::kSmoke;
  return BenchScale::kDefault;
}

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const char* v = std::getenv("SERPENTINE_THREADS");
  if (v != nullptr) {
    int n = std::atoi(v);
    if (n > 0) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int64_t ScaledTrials(int64_t paper_trials, int64_t default_divisor,
                     int64_t smoke_divisor, int64_t min_trials) {
  switch (GetBenchScale()) {
    case BenchScale::kFull:
      return paper_trials;
    case BenchScale::kDefault:
      return std::max(min_trials, paper_trials / default_divisor);
    case BenchScale::kSmoke:
      return std::max(min_trials, paper_trials / smoke_divisor);
  }
  return min_trials;
}

}  // namespace serpentine
