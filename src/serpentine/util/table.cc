#include "serpentine/util/table.h"

#include <algorithm>
#include <cstdio>

namespace serpentine {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string();
      out += cell;
      if (i + 1 < cols) out.append(width[i] - cell.size() + 2, ' ');
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t rule = 0;
    for (size_t i = 0; i < cols; ++i) rule += width[i] + (i + 1 < cols ? 2 : 0);
    out.append(rule, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace serpentine
