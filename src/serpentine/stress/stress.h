// Million-request stress harness: an open-loop, multi-tenant request
// stream (workload::ArrivalProcess) driven incrementally through the
// serving engine — one sim::ServingCore for a single library, or a
// catalog-routed fleet of cores — with two service-layer effects the sim
// configs don't model:
//
//   * a segment cache (LRU over logical segments): a request whose segment
//     is cached is answered at arrival, latency 0, never dispatched;
//   * cross-tenant duplicate coalescing: a request for a segment already
//     in flight piggybacks on the primary read and completes (or sheds)
//     with it instead of dispatching its own.
//
// Every arrival therefore takes exactly one of four terminal paths —
// cache hit, coalesced, answered by the engine (OK or failed), or shed —
// and RunStress checks the conservation identity
//   arrivals == cache_hits + coalesced + completed + failed + shed
// (coalesced waiters of a shed primary count under shed).
//
// Determinism: the arrival process, tenant draw, and segment draw come
// from three decorrelated rand48 streams derived from one seed; the cores
// are the pinned deterministic engine; and the harness cranks every core
// to each arrival instant before admitting it, so the whole run is a pure
// function of the config. RunReplicatedStress is thread-count invariant
// by the repo-wide recipe (replica r reseeds from DeriveRand48State(seed,
// r); results fold in replica order).
//
// Latencies are recorded into obs::Histogram (p50/p95/p99/p99.9 within
// one log₂ bucket, exact min/max — see Histogram::Quantile) rather than a
// sorted vector, so a million-request run costs O(buckets) memory for its
// tail statistics.
#ifndef SERPENTINE_STRESS_STRESS_H_
#define SERPENTINE_STRESS_STRESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serpentine/fleet/fleet_server.h"
#include "serpentine/obs/histogram.h"
#include "serpentine/sim/online_server.h"
#include "serpentine/tape/locate_model.h"
#include "serpentine/util/stats.h"
#include "serpentine/util/statusor.h"

namespace serpentine::stress {

/// One tenant's share of the request stream. Tenants are drawn per
/// arrival, weighted, from a stream separate from arrival timing — adding
/// a tenant never shifts when requests arrive.
struct TenantSpec {
  std::string name;
  double weight = 1.0;
};

struct StressConfig {
  /// Arrival process: "poisson", "diurnal", or "bursty"
  /// (workload::MakeArrivalProcess), at this long-run mean rate.
  std::string process = "poisson";
  double arrival_rate_per_hour = 60.0;
  int64_t total_requests = 10000;
  int32_t seed = 1;

  /// The request mix. Empty = one tenant ("t0", weight 1).
  std::vector<TenantSpec> tenants;

  /// LRU segment-cache capacity in logical segments; 0 disables caching.
  int64_t cache_capacity = 0;
  /// Coalesce duplicate in-flight segment reads.
  bool coalesce_duplicates = false;

  /// Serving-engine knobs (dispatch policy, algorithm, admission,
  /// deadlines, degradation, faults, breaker). Its own arrival knobs
  /// (arrival_rate_per_hour, total_requests, seed) are ignored — the
  /// stress stream above replaces them.
  sim::OnlineServerConfig serving;

  /// Fleet shape. 1 library = single core; > 1 = catalog + router
  /// (placement/router/mount knobs below apply).
  int libraries = 1;
  fleet::PlacementOptions placement;
  fleet::RouterOptions router;
  double mount_exchange_seconds = 0.0;
};

/// Per-tenant accounting. Terminal counts sum to `arrivals`; response
/// statistics cover every answered request (hits at 0 latency, coalesced
/// at the primary's completion).
struct TenantStats {
  std::string name;
  double weight = 1.0;
  int64_t arrivals = 0;
  int64_t cache_hits = 0;
  int64_t coalesced = 0;
  int64_t completed = 0;  ///< answered OK by the engine
  int64_t failed = 0;     ///< answered with an error
  int64_t shed = 0;       ///< shed at admission (or waiting on a shed read)
  obs::Histogram response;
};

struct StressResult {
  /// Terminal-path totals; arrivals == cache_hits + coalesced + completed
  /// + failed + shed (checked).
  int64_t arrivals = 0;
  int64_t cache_hits = 0;
  int64_t coalesced = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t shed = 0;
  /// Requests actually pushed into the serving engine(s).
  int64_t dispatched = 0;

  /// End-to-end latency over every *answered* request (hits, coalesced,
  /// engine completions; sheds excluded).
  obs::Histogram latency;
  double mean_response_seconds = 0.0;
  double p50_response_seconds = 0.0;
  double p95_response_seconds = 0.0;
  double p99_response_seconds = 0.0;
  double p999_response_seconds = 0.0;
  double max_response_seconds = 0.0;

  double makespan_seconds = 0.0;       ///< first arrival to last core clock
  double throughput_per_hour = 0.0;    ///< answered / makespan
  double offered_rate_per_hour = 0.0;  ///< arrivals / arrival span
  /// Summed drive busy / makespan (can exceed 1 with several libraries).
  double utilization = 0.0;

  std::vector<TenantStats> tenants;
  /// Jain fairness index over per-tenant answered throughput normalized
  /// by weight: 1 = perfectly proportional, 1/n = one tenant starved.
  double fairness_jain = 1.0;

  /// Aggregated engine tallies (fleet-style fold across cores).
  sim::OnlineServerResult engine;
};

/// Rejects bad process names/rates, non-positive tenant weights, negative
/// cache capacity, and invalid nested serving/placement/router configs.
Status ValidateStressConfig(const StressConfig& config);

/// Runs the stream to completion: every arrival answered or shed, every
/// core drained. Fails only on an invalid configuration (and propagates
/// catalog build errors for unplaceable fleet shapes). `models[lib][cart]`
/// borrows the fleet's locate models, as fleet::Fleet does; a
/// single-library single-cartridge run passes {{&model}}.
StatusOr<StressResult> RunStress(
    const std::vector<std::vector<const tape::LocateModel*>>& models,
    const StressConfig& config);

/// Independent replications, thread-count invariant.
struct ReplicatedStressStats {
  std::vector<StressResult> results;
  Accumulator p99_response_seconds;
  Accumulator throughput_per_hour;
  Accumulator shed_fraction;
  Accumulator cache_hit_fraction;
  Accumulator fairness_jain;
};

StatusOr<ReplicatedStressStats> RunReplicatedStress(
    const std::vector<std::vector<const tape::LocateModel*>>& models,
    const StressConfig& config, int replications, int threads = 0);

}  // namespace serpentine::stress

#endif  // SERPENTINE_STRESS_STRESS_H_
