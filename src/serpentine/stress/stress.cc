#include "serpentine/stress/stress.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "serpentine/fleet/catalog.h"
#include "serpentine/fleet/router.h"
#include "serpentine/sim/serving_core.h"
#include "serpentine/util/check.h"
#include "serpentine/util/env.h"
#include "serpentine/util/lrand48.h"
#include "serpentine/util/thread_pool.h"
#include "serpentine/workload/arrival_process.h"

namespace serpentine::stress {
namespace {

/// Stream indices deriving the tenant and segment rand48 streams from the
/// config seed. Fixed, distinct from the online-extras stream (1000003),
/// the library-fault stride (1000033), and each other; they must never
/// change — the stress determinism tests pin the draws.
constexpr int64_t kTenantStream = 1000081;
constexpr int64_t kSegmentStream = 1000099;

/// LRU set of logical segments.
class SegmentCache {
 public:
  explicit SegmentCache(int64_t capacity) : capacity_(capacity) {}

  bool Touch(int64_t segment) {
    if (capacity_ <= 0) return false;
    auto it = index_.find(segment);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  void Insert(int64_t segment) {
    if (capacity_ <= 0) return;
    auto it = index_.find(segment);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.push_front(segment);
    index_[segment] = order_.begin();
    if (static_cast<int64_t>(order_.size()) > capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
  }

 private:
  int64_t capacity_;
  std::list<int64_t> order_;
  std::unordered_map<int64_t, std::list<int64_t>::iterator> index_;
};

struct Waiter {
  int tenant = 0;
  double time = 0.0;
};

/// What the harness remembers about a pushed (primary) request.
struct PushedMeta {
  int tenant = 0;
  int64_t logical = 0;
};

double JainIndex(const std::vector<TenantStats>& tenants) {
  double sum = 0.0, sum_sq = 0.0;
  for (const TenantStats& t : tenants) {
    double answered =
        static_cast<double>(t.cache_hits + t.coalesced + t.completed +
                            t.failed);
    double x = t.weight > 0.0 ? answered / t.weight : 0.0;
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(tenants.size()) * sum_sq);
}

}  // namespace

Status ValidateStressConfig(const StressConfig& config) {
  // Trial-build the process: MakeArrivalProcess owns the name/rate rules.
  SERPENTINE_RETURN_IF_ERROR(workload::MakeArrivalProcess(
                                 config.process, config.arrival_rate_per_hour,
                                 config.seed)
                                 .status());
  for (const TenantSpec& t : config.tenants) {
    if (!std::isfinite(t.weight) || t.weight <= 0.0) {
      return InvalidArgumentError(
          "StressConfig: tenant '" + t.name +
          "' weight must be finite and > 0, got " + std::to_string(t.weight));
    }
  }
  if (config.cache_capacity < 0) {
    return InvalidArgumentError(
        "StressConfig: cache_capacity must be >= 0 (0 = disabled), got " +
        std::to_string(config.cache_capacity));
  }
  if (config.libraries < 1) {
    return InvalidArgumentError(
        "StressConfig: libraries must be >= 1, got " +
        std::to_string(config.libraries));
  }
  // The serving config is validated with the stress arrival knobs patched
  // in, so total_requests inherits QueueSimConfig's [1, 2^32) id-packing
  // bound.
  sim::OnlineServerConfig serving = config.serving;
  serving.arrival_rate_per_hour = config.arrival_rate_per_hour;
  serving.total_requests = config.total_requests;
  serving.seed = config.seed;
  SERPENTINE_RETURN_IF_ERROR(sim::ValidateOnlineServerConfig(serving));
  SERPENTINE_RETURN_IF_ERROR(fleet::ValidateRouterOptions(config.router));
  return OkStatus();
}

StatusOr<StressResult> RunStress(
    const std::vector<std::vector<const tape::LocateModel*>>& models,
    const StressConfig& config) {
  SERPENTINE_RETURN_IF_ERROR(ValidateStressConfig(config));
  if (static_cast<int>(models.size()) != config.libraries) {
    return InvalidArgumentError(
        "RunStress: config names " + std::to_string(config.libraries) +
        " libraries but " + std::to_string(models.size()) +
        " model vectors were passed");
  }
  fleet::Fleet fl;
  fl.models = models;
  for (int lib = 0; lib < fl.libraries(); ++lib) {
    if (fl.models[lib].empty()) {
      return InvalidArgumentError("RunStress: library " +
                                  std::to_string(lib) + " has no cartridges");
    }
    for (const tape::LocateModel* m : fl.models[lib]) {
      if (m == nullptr) {
        return InvalidArgumentError("RunStress: library " +
                                    std::to_string(lib) +
                                    " holds a null model");
      }
    }
  }

  // Catalog over the fleet topology, logical space = the smallest
  // library's capacity (the RunFleet default — placement always succeeds).
  fleet::FleetTopology topology = fl.Topology();
  int64_t logical = topology.library_segments(0);
  for (int lib = 1; lib < fl.libraries(); ++lib) {
    logical = std::min(logical, topology.library_segments(lib));
  }
  SERPENTINE_ASSIGN_OR_RETURN(
      fleet::Catalog catalog,
      fleet::Catalog::Build(topology, logical, config.placement));

  // The serving engines. The patched arrival knobs are inert (arrivals are
  // pushed below) but keep the stored config self-consistent.
  sim::OnlineServerConfig serving = config.serving;
  serving.arrival_rate_per_hour = config.arrival_rate_per_hour;
  serving.total_requests = config.total_requests;
  serving.seed = config.seed;

  constexpr int64_t kLibraryFaultStride = 1000033;  // fleet_server.cc's
  std::vector<std::unique_ptr<sim::ServingCore>> cores;
  cores.reserve(fl.libraries());
  for (int lib = 0; lib < fl.libraries(); ++lib) {
    cores.push_back(std::make_unique<sim::ServingCore>(
        fl.models[lib], serving,
        static_cast<int64_t>(serving.seed) + kLibraryFaultStride * lib,
        config.mount_exchange_seconds));
  }
  fleet::Router router(&catalog, fl.libraries(), config.router);

  // Decorrelated request-mix streams.
  SERPENTINE_ASSIGN_OR_RETURN(
      std::unique_ptr<workload::ArrivalProcess> process,
      workload::MakeArrivalProcess(config.process,
                                   config.arrival_rate_per_hour,
                                   config.seed));
  Lrand48 tenant_rng;
  tenant_rng.SeedState(DeriveRand48State(config.seed, kTenantStream));
  Lrand48 segment_rng;
  segment_rng.SeedState(DeriveRand48State(config.seed, kSegmentStream));

  StressResult out;
  out.tenants.resize(config.tenants.empty() ? 1 : config.tenants.size());
  double weight_sum = 0.0;
  for (size_t i = 0; i < out.tenants.size(); ++i) {
    if (config.tenants.empty()) {
      out.tenants[i].name = "t0";
      out.tenants[i].weight = 1.0;
    } else {
      out.tenants[i].name = config.tenants[i].name;
      out.tenants[i].weight = config.tenants[i].weight;
    }
    weight_sum += out.tenants[i].weight;
  }

  SegmentCache cache(config.cache_capacity);
  // Coalescing state: logical segment → waiters riding the in-flight
  // primary. Only populated when coalescing is on (at most one in-flight
  // primary per segment then).
  std::unordered_map<int64_t, std::vector<Waiter>> inflight;
  std::unordered_map<int64_t, PushedMeta> pushed;  // primary id → meta

  auto answer = [&](int tenant, double latency) {
    out.latency.Add(latency);
    out.tenants[tenant].response.Add(latency);
  };

  // Per-core completion hook: credit the primary's tenant, fill the
  // cache, release coalesced waiters.
  for (std::unique_ptr<sim::ServingCore>& core : cores) {
    core->set_completion_callback([&](const sim::ServingRequest& req,
                                      double at, bool ok) {
      auto it = pushed.find(req.id);
      SERPENTINE_CHECK(it != pushed.end());
      PushedMeta meta = it->second;
      pushed.erase(it);
      TenantStats& t = out.tenants[meta.tenant];
      if (ok) {
        ++t.completed;
        cache.Insert(meta.logical);
      } else {
        ++t.failed;
      }
      answer(meta.tenant, at - req.time);
      auto fit = inflight.find(meta.logical);
      if (fit != inflight.end()) {
        for (const Waiter& w : fit->second) {
          ++out.coalesced;
          ++out.tenants[w.tenant].coalesced;
          answer(w.tenant, at - w.time);
        }
        inflight.erase(fit);
      }
    });
  }

  // Shed draining: the engine records sheds in result().shed_records but
  // fires no callback; consume the growth after every crank so waiters on
  // a shed primary are released (as sheds) promptly.
  std::vector<size_t> shed_seen(cores.size(), 0);
  int64_t shed_waiters = 0;
  auto drain_sheds = [&] {
    for (size_t c = 0; c < cores.size(); ++c) {
      const std::vector<sim::ShedRecord>& records =
          cores[c]->result().shed_records;
      for (; shed_seen[c] < records.size(); ++shed_seen[c]) {
        auto it = pushed.find(records[shed_seen[c]].id);
        SERPENTINE_CHECK(it != pushed.end());
        PushedMeta meta = it->second;
        pushed.erase(it);
        ++out.tenants[meta.tenant].shed;
        auto fit = inflight.find(meta.logical);
        if (fit != inflight.end()) {
          for (const Waiter& w : fit->second) {
            ++shed_waiters;
            ++out.tenants[w.tenant].shed;
          }
          inflight.erase(fit);
        }
      }
    }
  };

  auto crank_to = [&](double t) {
    for (std::unique_ptr<sim::ServingCore>& core : cores) {
      core->AdvanceInputBound(t);
      while (core->Step() == sim::ServingStep::kRan) {
      }
    }
    drain_sheds();
  };

  double first_arrival = 0.0;
  double last_arrival = 0.0;
  std::vector<fleet::ReplicaScore> scores;
  for (int64_t i = 0; i < config.total_requests; ++i) {
    double t = process->NextSeconds();
    if (i == 0) first_arrival = t;
    last_arrival = t;
    // The tenant and segment draws are consumed unconditionally, so the
    // stream of (time, tenant, segment) triples is independent of cache
    // and coalescing outcomes.
    int tenant = 0;
    {
      double u = tenant_rng.NextDouble() * weight_sum;
      double acc = 0.0;
      for (size_t k = 0; k < out.tenants.size(); ++k) {
        acc += out.tenants[k].weight;
        if (u < acc || k + 1 == out.tenants.size()) {
          tenant = static_cast<int>(k);
          break;
        }
      }
    }
    int64_t segment = segment_rng.NextBounded(logical);
    ++out.arrivals;
    ++out.tenants[tenant].arrivals;

    // Let every core serve up to the arrival instant before the request
    // looks at cache/in-flight state — the trajectory is then a pure
    // function of the config, independent of any host-side interleaving.
    crank_to(t);

    if (cache.Touch(segment)) {
      ++out.cache_hits;
      ++out.tenants[tenant].cache_hits;
      answer(tenant, 0.0);
      continue;
    }
    if (config.coalesce_duplicates) {
      auto it = inflight.find(segment);
      if (it != inflight.end()) {
        it->second.push_back(Waiter{tenant, t});
        continue;
      }
    }

    // Primary read: score the replicas and push to the chosen core.
    sim::ServingRequest req;
    req.time = t;
    req.id = (static_cast<int64_t>(config.seed) << 32) | i;
    const std::vector<fleet::ReplicaLocation>& replicas =
        catalog.replicas(segment);
    scores.resize(replicas.size());
    for (size_t r = 0; r < replicas.size(); ++r) {
      const sim::ServingCore& core = *cores[replicas[r].library];
      // With one replica the bid is decided; skip the O(queue-depth)
      // estimate that would dominate saturated million-request runs.
      scores[r].seconds =
          replicas.size() == 1
              ? 0.0
              : std::max(core.clock() - t, 0.0) +
                    core.EstimateServiceSeconds(replicas[r].cartridge,
                                                replicas[r].segment);
      scores[r].breaker_open = core.breaker_open();
    }
    fleet::RouteDecision decision = router.Route(segment, scores);
    req.segment = decision.location.segment;
    req.cartridge = decision.location.cartridge;
    cores[decision.location.library]->Push(req);
    pushed[req.id] = PushedMeta{tenant, segment};
    if (config.coalesce_duplicates) inflight[segment];  // open the entry
    ++out.dispatched;
  }

  for (std::unique_ptr<sim::ServingCore>& core : cores) {
    core->FinishInput();
    while (core->Step() == sim::ServingStep::kRan) {
    }
    SERPENTINE_CHECK(core->Step() == sim::ServingStep::kDone);
    core->FinishResult();
  }
  drain_sheds();
  SERPENTINE_CHECK(pushed.empty());
  SERPENTINE_CHECK(inflight.empty());

  // ---- aggregation ----
  double end_clock = 0.0;
  double batch_sum = 0.0;
  for (std::unique_ptr<sim::ServingCore>& core : cores) {
    const sim::OnlineServerResult& r = core->result();
    out.engine.arrivals += r.arrivals;
    out.engine.admitted += r.admitted;
    out.engine.completed += r.completed;
    out.engine.failed += r.failed;
    out.engine.shed += r.shed;
    out.engine.deadline_missed += r.deadline_missed;
    out.engine.batches += r.batches;
    out.engine.drive_busy_seconds += r.drive_busy_seconds;
    out.engine.fault_retries += r.fault_retries;
    out.engine.drive_resets += r.drive_resets;
    out.engine.reschedules += r.reschedules;
    out.engine.permanent_errors += r.permanent_errors;
    out.engine.recovery_seconds += r.recovery_seconds;
    out.engine.max_wait_cycles_observed = std::max(
        out.engine.max_wait_cycles_observed, r.max_wait_cycles_observed);
    out.engine.degraded_batches += r.degraded_batches;
    out.engine.degradation_max_rung =
        std::max(out.engine.degradation_max_rung, r.degradation_max_rung);
    out.engine.breaker_fast_fails += r.breaker_fast_fails;
    out.engine.breaker_wait_seconds += r.breaker_wait_seconds;
    batch_sum += core->batch_sum();
    end_clock = std::max(end_clock, core->clock());
  }
  if (out.engine.batches > 0) {
    out.engine.mean_batch_size = batch_sum / out.engine.batches;
  }

  out.completed = out.engine.completed;
  out.failed = out.engine.failed;
  out.shed = out.engine.shed + shed_waiters;
  SERPENTINE_CHECK_EQ(out.engine.arrivals, out.dispatched);
  // The conservation identity: every arrival took exactly one terminal
  // path.
  SERPENTINE_CHECK_EQ(out.cache_hits + out.coalesced + out.completed +
                          out.failed + out.shed,
                      out.arrivals);

  out.makespan_seconds = std::max(end_clock, last_arrival) - first_arrival;
  double arrival_span = last_arrival - first_arrival;
  out.offered_rate_per_hour =
      arrival_span > 0.0 ? out.arrivals / (arrival_span / 3600.0) : 0.0;
  int64_t answered = out.arrivals - out.shed;
  out.throughput_per_hour =
      out.makespan_seconds > 0.0
          ? answered / (out.makespan_seconds / 3600.0)
          : 0.0;
  out.utilization = out.makespan_seconds > 0.0
                        ? out.engine.drive_busy_seconds / out.makespan_seconds
                        : 0.0;

  if (out.latency.count() > 0) {
    out.mean_response_seconds =
        out.latency.total_seconds() / out.latency.count();
    out.p50_response_seconds = out.latency.Quantile(0.50);
    out.p95_response_seconds = out.latency.Quantile(0.95);
    out.p99_response_seconds = out.latency.Quantile(0.99);
    out.p999_response_seconds = out.latency.Quantile(0.999);
    out.max_response_seconds = out.latency.max_seconds();
  }
  out.fairness_jain = JainIndex(out.tenants);
  return out;
}

StatusOr<ReplicatedStressStats> RunReplicatedStress(
    const std::vector<std::vector<const tape::LocateModel*>>& models,
    const StressConfig& config, int replications, int threads) {
  if (replications < 1) {
    return InvalidArgumentError(
        "RunReplicatedStress: replications must be >= 1, got " +
        std::to_string(replications));
  }
  SERPENTINE_RETURN_IF_ERROR(ValidateStressConfig(config));
  ReplicatedStressStats stats;
  stats.results.resize(replications);

  // Replica r's seed comes from the derived stream r regardless of which
  // worker runs it; each replica writes only its own slot.
  auto run = [&](int64_t r) {
    StressConfig replica = config;
    replica.seed = static_cast<int32_t>(DeriveRand48State(config.seed, r) &
                                        0x7FFFFFFF);
    StatusOr<StressResult> result = RunStress(models, replica);
    SERPENTINE_CHECK(result.ok());  // config validated above
    stats.results[r] = std::move(result).value();
  };
  bool concurrent = true;
  for (const std::vector<const tape::LocateModel*>& lib : models) {
    for (const tape::LocateModel* m : lib) {
      if (m == nullptr || !m->SupportsConcurrentUse()) concurrent = false;
    }
  }
  int workers = concurrent ? ResolveThreadCount(threads) : 1;
  if (workers > 1 && replications > 1) {
    ParallelFor(&ThreadPool::Shared(), replications, workers, run);
  } else {
    for (int64_t r = 0; r < replications; ++r) run(r);
  }

  // Fold in replica order: thread-count invariant.
  for (const StressResult& r : stats.results) {
    stats.p99_response_seconds.Add(r.p99_response_seconds);
    stats.throughput_per_hour.Add(r.throughput_per_hour);
    stats.shed_fraction.Add(
        r.arrivals > 0 ? static_cast<double>(r.shed) / r.arrivals : 0.0);
    stats.cache_hit_fraction.Add(
        r.arrivals > 0 ? static_cast<double>(r.cache_hits) / r.arrivals
                       : 0.0);
    stats.fairness_jain.Add(r.fairness_jain);
  }
  return stats;
}

}  // namespace serpentine::stress
