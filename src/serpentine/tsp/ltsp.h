// Exact polynomial solver for the linear-TSP (LTSP) restriction of the
// open-path problem, after Honoré, Simon & Suter's polynomial algorithm
// for tape-like media (see PAPERS.md): when cities lie on a line and the
// cost of i→j is a nondecreasing function of the distance between them, an
// optimal open path never leaves a gap behind the head — the visited set
// is always a contiguous interval of the line, extended one city at a time
// at either end. That yields an O(n²) interval dynamic program over states
// (interval, which-end-the-head-is-at).
//
// For HelicalLocateModel costs (overhead + rate·|distance|) the interval
// property is exact, so SolveLtspPath returns a true optimum — a
// polynomial oracle that tests use to bound LOSS at sizes Held–Karp can
// never reach. Under the serpentine Dlt4000 model costs are only
// approximately linear (track parity and key-point clamps break
// monotonicity), so there the result is a strong heuristic, not a bound.
#ifndef SERPENTINE_TSP_LTSP_H_
#define SERPENTINE_TSP_LTSP_H_

#include <vector>

#include "serpentine/tsp/cost_matrix.h"
#include "serpentine/util/statusor.h"

namespace serpentine::tsp {

/// Maximum number of non-start cities SolveLtspPath accepts. The DP holds
/// two n×n double tables plus two parent tables (~2048² × 18 B ≈ 76 MB).
inline constexpr int kMaxLtspCities = 2048;

/// Optimal-under-linearity path by the LTSP interval DP, O(n²) time and
/// space. Requires cities 1..n-1 to be indexed in nondecreasing line
/// order (true for TSP instances built from CoalesceRequests output,
/// whose groups are sorted by first segment). Returns the visiting order
/// starting with city 0. Fails with InvalidArgument when the instance
/// exceeds kMaxLtspCities.
serpentine::StatusOr<std::vector<int>> SolveLtspPath(const CostMatrix& m);

}  // namespace serpentine::tsp

#endif  // SERPENTINE_TSP_LTSP_H_
