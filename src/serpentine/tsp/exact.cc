#include "serpentine/tsp/exact.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace serpentine::tsp {

StatusOr<std::vector<int>> SolveExactHeldKarp(const CostMatrix& m) {
  int cities = m.size();
  int targets = cities - 1;  // cities 1..cities-1
  if (targets > kMaxHeldKarpCities) {
    return InvalidArgumentError("Held-Karp limited to " +
                                std::to_string(kMaxHeldKarpCities) +
                                " cities");
  }
  if (targets == 0) return std::vector<int>{0};

  size_t masks = size_t{1} << targets;
  // dp[mask * targets + j]: minimal cost of a path 0 → ... → (j+1) visiting
  // exactly the target set `mask` (bit j ⇔ city j+1).
  std::vector<double> dp(masks * targets, kInfiniteCost);
  std::vector<int8_t> parent(masks * targets, -1);
  for (int j = 0; j < targets; ++j) {
    dp[(size_t{1} << j) * targets + j] = m.cost(0, j + 1);
  }
  for (size_t mask = 1; mask < masks; ++mask) {
    for (int j = 0; j < targets; ++j) {
      if (!(mask & (size_t{1} << j))) continue;
      double base = dp[mask * targets + j];
      if (base == kInfiniteCost) continue;
      for (int k = 0; k < targets; ++k) {
        if (mask & (size_t{1} << k)) continue;
        size_t next = mask | (size_t{1} << k);
        double cand = base + m.cost(j + 1, k + 1);
        if (cand < dp[next * targets + k]) {
          dp[next * targets + k] = cand;
          parent[next * targets + k] = static_cast<int8_t>(j);
        }
      }
    }
  }

  size_t full = masks - 1;
  int best_end = 0;
  double best = kInfiniteCost;
  for (int j = 0; j < targets; ++j) {
    if (dp[full * targets + j] < best) {
      best = dp[full * targets + j];
      best_end = j;
    }
  }

  std::vector<int> order(cities);
  size_t mask = full;
  int j = best_end;
  for (int pos = cities - 1; pos >= 1; --pos) {
    order[pos] = j + 1;
    int prev = parent[mask * targets + j];
    mask &= ~(size_t{1} << j);
    j = prev;
  }
  order[0] = 0;
  return order;
}

StatusOr<std::vector<int>> SolveExactBruteForce(const CostMatrix& m) {
  int cities = m.size();
  int targets = cities - 1;
  if (targets > kMaxBruteForceCities) {
    return InvalidArgumentError("brute force limited to " +
                                std::to_string(kMaxBruteForceCities) +
                                " cities");
  }
  std::vector<int> perm(targets);
  std::iota(perm.begin(), perm.end(), 1);
  std::vector<int> best_perm = perm;
  double best = kInfiniteCost;
  do {
    double total = 0.0;
    int at = 0;
    for (int c : perm) {
      total += m.cost(at, c);
      if (total >= best) break;  // admissible prune: costs are nonnegative
      at = c;
    }
    if (total < best) {
      best = total;
      best_perm = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  std::vector<int> order;
  order.reserve(cities);
  order.push_back(0);
  order.insert(order.end(), best_perm.begin(), best_perm.end());
  return order;
}

}  // namespace serpentine::tsp
