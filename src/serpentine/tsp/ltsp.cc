#include "serpentine/tsp/ltsp.h"

#include <cstdint>
#include <string>

#include "serpentine/util/check.h"

namespace serpentine::tsp {

StatusOr<std::vector<int>> SolveLtspPath(const CostMatrix& m) {
  const int cities = m.size();
  const int targets = cities - 1;  // cities 1..cities-1, in line order
  if (targets > kMaxLtspCities) {
    return InvalidArgumentError("LTSP limited to " +
                                std::to_string(kMaxLtspCities) + " cities");
  }
  if (targets == 0) return std::vector<int>{0};

  // State: the visited cities are exactly the interval [i, j] of targets
  // (target t ⇔ city t+1) with the head at the left end (L) or right end
  // (R). dpL/dpR hold the minimal cost of reaching that state from the
  // start; pL/pR record which predecessor end won (0: same end, 1:
  // opposite end), for path reconstruction.
  const size_t mm = static_cast<size_t>(targets);
  auto at = [mm](int i, int j) { return static_cast<size_t>(i) * mm + j; };
  std::vector<double> dpL(mm * mm, kInfiniteCost);
  std::vector<double> dpR(mm * mm, kInfiniteCost);
  std::vector<int8_t> pL(mm * mm, -1);
  std::vector<int8_t> pR(mm * mm, -1);

  for (int i = 0; i < targets; ++i) {
    dpL[at(i, i)] = dpR[at(i, i)] = m.cost(0, i + 1);
  }
  for (int len = 2; len <= targets; ++len) {
    for (int i = 0; i + len - 1 < targets; ++i) {
      const int j = i + len - 1;
      // Arrive at the left end (city i+1): the previous interval was
      // [i+1, j] with the head at either end.
      {
        const double from_same = dpL[at(i + 1, j)] + m.cost(i + 2, i + 1);
        const double from_opp = dpR[at(i + 1, j)] + m.cost(j + 1, i + 1);
        if (from_same <= from_opp) {
          dpL[at(i, j)] = from_same;
          pL[at(i, j)] = 0;
        } else {
          dpL[at(i, j)] = from_opp;
          pL[at(i, j)] = 1;
        }
      }
      // Arrive at the right end (city j+1): previous interval [i, j-1].
      {
        const double from_same = dpR[at(i, j - 1)] + m.cost(j, j + 1);
        const double from_opp = dpL[at(i, j - 1)] + m.cost(i + 1, j + 1);
        if (from_same <= from_opp) {
          dpR[at(i, j)] = from_same;
          pR[at(i, j)] = 0;
        } else {
          dpR[at(i, j)] = from_opp;
          pR[at(i, j)] = 1;
        }
      }
    }
  }

  // Walk back from the cheaper full-interval end state, peeling the most
  // recently visited city (the head) off the interval each step.
  std::vector<int> order(cities);
  int i = 0;
  int j = targets - 1;
  bool left = dpL[at(i, j)] <= dpR[at(i, j)];
  for (int pos = cities - 1; pos >= 1; --pos) {
    if (i == j) {
      order[pos] = i + 1;
      break;
    }
    if (left) {
      order[pos] = i + 1;
      left = pL[at(i, j)] == 0;
      ++i;
    } else {
      order[pos] = j + 1;
      left = pR[at(i, j)] == 1;
      --j;
    }
  }
  order[0] = 0;
  return order;
}

}  // namespace serpentine::tsp
