// Flat structure-of-arrays locate-cost source for the open-path TSP
// formulation of tape scheduling. Where CostMatrix::Build materializes all
// O(n²) edge costs up front, LocateCostSoA precomputes only the O(n)
// per-city locate inputs — track, reading section, physical position, and
// key-point position of every city's in/out endpoint — and prices each edge
// on demand with a branch-light arithmetic kernel. Solvers that touch a
// sparse or shifting subset of edges (sparse LOSS, Or-opt, partitioned
// LOSS) never pay for edges they do not read, and 100k-city batches stop
// needing an 80 GB matrix.
//
// The kernel reproduces Dlt4000LocateModel::LocateSeconds bit for bit: the
// same case-1 test, the same key-point clamp, and the same floating-point
// expression shapes evaluated in the same order (pinned by
// tsp_locate_cost_test.cc). For any other model the class degrades to
// forwarding each evaluation to model.LocateSeconds — callers that need
// the plan-each-pair-once guarantee on that path wrap the model in a
// tape::CachedLocateModel first.
#ifndef SERPENTINE_TSP_LOCATE_COST_H_
#define SERPENTINE_TSP_LOCATE_COST_H_

#include <cmath>
#include <vector>

#include "serpentine/tape/locate_model.h"
#include "serpentine/tape/types.h"
#include "serpentine/tsp/cost_matrix.h"

namespace serpentine::tsp {

class LocateCostSoA {
 public:
  /// Builds the per-city arrays. City i's out-edges depart from
  /// `out_positions[i]` (head position after servicing i) and its in-edges
  /// arrive at `in_positions[i]` (first segment of i). Both vectors must
  /// have the same size; city 0 is the start. `model` must outlive this
  /// object (only the non-kernel fallback dereferences it after
  /// construction).
  LocateCostSoA(const tape::LocateModel& model,
                std::vector<tape::SegmentId> out_positions,
                std::vector<tape::SegmentId> in_positions);

  int size() const { return n_; }

  /// True when edges are priced by the inlined Dlt4000 kernel instead of
  /// virtual model calls.
  bool fast_kernel() const { return fast_; }

  /// True when cost()/LocateSeconds() may be called from several threads at
  /// once: the kernel path reads only immutable arrays; the fallback
  /// inherits the model's own guarantee.
  bool thread_safe() const {
    return fast_ || model_->SupportsConcurrentUse();
  }

  tape::SegmentId out_position(int city) const { return out_seg_[city]; }
  tape::SegmentId in_position(int city) const { return in_seg_[city]; }

  /// Locate seconds from city i's out-position to city j's in-position.
  double LocateSeconds(int i, int j) const {
    return fast_ ? Kernel(i, j)
                 : model_->LocateSeconds(out_seg_[i], in_seg_[j]);
  }

  /// TSP path semantics, matching CostMatrix::Build: self-loops and edges
  /// into the start city are forbidden.
  double cost(int i, int j) const {
    if (i == j || j == 0) return kInfiniteCost;
    return LocateSeconds(i, j);
  }

 private:
  /// Bit-identical reimplementation of Dlt4000LocateModel::LocateSeconds
  /// over the precomputed arrays (see locate_model.cc PlanLocate): the
  /// key-point position and its read-forward leg are per-destination
  /// constants, so the per-edge work reduces to two abs/compare chains and
  /// one fused sum.
  double Kernel(int i, int j) const {
    const tape::SegmentId src = out_seg_[i];
    const tape::SegmentId dst = in_seg_[j];
    if (src == dst) return 0.0;
    const int track_s = out_track_[i];
    const int track_d = in_track_[j];
    const double p_s = out_ppos_[i];
    // Case 1: forward in the same track, within the same or next two
    // reading sections — the drive stays at read speed.
    if (track_s == track_d && dst >= src && in_rsec_[j] <= out_rsec_[i] + 2) {
      return std::abs(in_ppos_[j] - p_s) * read_seconds_per_section_;
    }
    const double p_kp = in_kp_ppos_[j];
    const double scan_distance = std::abs(p_kp - p_s);
    const int src_dir = out_forward_[i] ? +1 : -1;
    const int scan_dir = p_kp > p_s ? +1 : (p_kp < p_s ? -1 : src_dir);
    double t = in_kp_read_seconds_[j];
    t += scan_overhead_seconds_ + scan_distance * scan_seconds_per_section_;
    if (track_s != track_d) t += track_switch_seconds_;
    if (scan_distance > 0.0 && scan_dir != src_dir) {
      t += reversal_penalty_seconds_;
    }
    return t;
  }

  int n_ = 0;
  bool fast_ = false;
  const tape::LocateModel* model_;
  std::vector<tape::SegmentId> out_seg_;
  std::vector<tape::SegmentId> in_seg_;

  // Kernel-only per-city arrays (empty on the fallback path).
  std::vector<int> out_track_;
  std::vector<int> in_track_;
  std::vector<int> out_rsec_;
  std::vector<int> in_rsec_;
  std::vector<double> out_ppos_;
  std::vector<double> in_ppos_;
  std::vector<double> in_kp_ppos_;
  /// Seconds of the read-forward leg from the destination's key point:
  /// |p_dst - p_kp| * read_seconds_per_section, precomputed once per city.
  std::vector<double> in_kp_read_seconds_;
  std::vector<char> out_forward_;

  double read_seconds_per_section_ = 0.0;
  double scan_seconds_per_section_ = 0.0;
  double scan_overhead_seconds_ = 0.0;
  double track_switch_seconds_ = 0.0;
  double reversal_penalty_seconds_ = 0.0;
};

}  // namespace serpentine::tsp

#endif  // SERPENTINE_TSP_LOCATE_COST_H_
