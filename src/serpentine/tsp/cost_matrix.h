// Dense asymmetric cost matrix for the open-path traveling-salesman
// formulation of tape scheduling (paper §4, OPT): city 0 is the initial
// head position; cities 1..n-1 are the (possibly coalesced) requests; a
// schedule is a Hamiltonian path starting at 0.
#ifndef SERPENTINE_TSP_COST_MATRIX_H_
#define SERPENTINE_TSP_COST_MATRIX_H_

#include <limits>
#include <vector>

#include "serpentine/util/check.h"

namespace serpentine::tsp {

/// Edge weight used for forbidden moves (self-loops, edges into the start).
inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// Row-major dense n×n matrix of travel costs. cost(i, j) is the cost of
/// servicing city j immediately after city i (for tape scheduling: the
/// locate time from the end of request i to the start of request j).
class CostMatrix {
 public:
  /// Creates an n×n matrix with self-loops forbidden and everything else 0.
  explicit CostMatrix(int n) : n_(n), w_(static_cast<size_t>(n) * n, 0.0) {
    SERPENTINE_CHECK_GT(n, 0);
    for (int i = 0; i < n; ++i) set(i, i, kInfiniteCost);
  }

  /// Builds the matrix by evaluating `cost(i, j)` on every ordered pair
  /// i != j exactly once — the matrix is the batch's edge-cost cache.
  /// Edges into city 0 are forbidden (the path never returns to the start).
  /// `cost` is a template parameter (not std::function) so the per-pair
  /// call inlines; with n up to 2049 cities the indirection used to cost a
  /// dispatched call on all ~4M pairs.
  template <typename CostFn>
  static CostMatrix Build(int n, CostFn&& cost) {
    CostMatrix m(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        m.set(i, j, j == 0 ? kInfiniteCost : cost(i, j));
      }
    }
    return m;
  }

  int size() const { return n_; }

  double cost(int i, int j) const {
    return w_[static_cast<size_t>(i) * n_ + j];
  }

  void set(int i, int j, double v) {
    w_[static_cast<size_t>(i) * n_ + j] = v;
  }

 private:
  int n_;
  std::vector<double> w_;
};

/// Total cost of visiting cities in `order` (which must start with 0 and
/// contain each city exactly once).
double PathCost(const CostMatrix& m, const std::vector<int>& order);

/// True iff `order` is a permutation of 0..n-1 beginning with city 0.
bool IsValidPath(const CostMatrix& m, const std::vector<int>& order);

}  // namespace serpentine::tsp

#endif  // SERPENTINE_TSP_COST_MATRIX_H_
