// The LOSS greedy heuristic for the asymmetric traveling-salesman path
// (paper §4, after [LLKS85]): repeatedly commit the cheapest edge incident
// on the city whose "loss" — the gap between its best and second-best
// remaining edge — is largest, so that committing the short edge avoids
// being forced onto a much longer one later.
#ifndef SERPENTINE_TSP_LOSS_H_
#define SERPENTINE_TSP_LOSS_H_

#include <vector>

#include "serpentine/tsp/cost_matrix.h"

namespace serpentine::tsp {

/// Builds a Hamiltonian path over all cities starting at city 0 using the
/// LOSS rule. O(n²) typical (the per-iteration work is revalidating
/// cached best/second-best edges, rescanning a row only when one of its
/// cached endpoints was consumed).
std::vector<int> SolveLossPath(const CostMatrix& m);

/// Statistics from a SolveLossPathWithStats run, for the ablation benches.
struct LossStats {
  int iterations = 0;
  int row_rescans = 0;  ///< full O(n) rescans of a city's edge cache
};

/// As SolveLossPath, also reporting work counters.
std::vector<int> SolveLossPathWithStats(const CostMatrix& m,
                                        LossStats* stats);

}  // namespace serpentine::tsp

#endif  // SERPENTINE_TSP_LOSS_H_
