// Sparse-graph variant of the LOSS heuristic — the paper's future-work
// sketch (§4): run LOSS on a graph containing only a logarithmic number of
// short candidate out-edges per city; when it can proceed no further,
// contract each partial path into a single city and repeat on the reduced
// (dense) problem until one connected path remains.
#ifndef SERPENTINE_TSP_SPARSE_LOSS_H_
#define SERPENTINE_TSP_SPARSE_LOSS_H_

#include <functional>
#include <vector>

#include "serpentine/tsp/cost_matrix.h"

namespace serpentine::tsp {

/// Candidate edge in the sparse graph.
struct SparseEdge {
  int to = 0;
  double cost = 0.0;
};

/// Work counters for the ablation bench.
struct SparseLossStats {
  int sparse_edges = 0;        ///< candidate edges offered
  int sparse_commits = 0;      ///< edges committed in the sparse phase
  int fragments_after_sparse = 0;
  int contraction_cities = 0;  ///< size of the dense follow-up problem
};

/// Builds a Hamiltonian path starting at city 0.
///
/// `out_edges[u]` lists candidate successors of u (typically the O(log n)
/// nearest in weave order). `full_cost(i, j)` supplies exact costs for the
/// contraction phase, where partial paths are linked using the dense LOSS
/// rule. Cities with empty candidate lists simply join in the contraction
/// phase.
std::vector<int> SolveSparseLossPath(
    int n, const std::vector<std::vector<SparseEdge>>& out_edges,
    const std::function<double(int, int)>& full_cost,
    SparseLossStats* stats = nullptr);

}  // namespace serpentine::tsp

#endif  // SERPENTINE_TSP_SPARSE_LOSS_H_
