// Exact solvers for the open-path asymmetric TSP (the paper's OPT
// algorithm, §4). The problem is NP-hard; these are exponential and guarded
// to small instances, exactly as the paper restricts OPT to ~12 requests.
#ifndef SERPENTINE_TSP_EXACT_H_
#define SERPENTINE_TSP_EXACT_H_

#include <vector>

#include "serpentine/tsp/cost_matrix.h"
#include "serpentine/util/statusor.h"

namespace serpentine::tsp {

/// Maximum number of non-start cities SolveExactHeldKarp accepts
/// (2^m × m doubles of DP state; 16 → ~8 MB).
inline constexpr int kMaxHeldKarpCities = 16;

/// Maximum number of non-start cities SolveExactBruteForce accepts.
inline constexpr int kMaxBruteForceCities = 10;

/// Optimal path by Held–Karp dynamic programming, O(2^m · m²) for m
/// non-start cities. Returns the visiting order (starting with 0).
/// Fails with InvalidArgument if m exceeds kMaxHeldKarpCities.
serpentine::StatusOr<std::vector<int>> SolveExactHeldKarp(
    const CostMatrix& m);

/// Optimal path by exhaustive permutation — the paper's literal
/// implementation of OPT ("calculates the minimal locate time over all
/// permutations of R starting at I"). O(m! · m); used to cross-check
/// Held–Karp in tests. Fails if m exceeds kMaxBruteForceCities.
serpentine::StatusOr<std::vector<int>> SolveExactBruteForce(
    const CostMatrix& m);

}  // namespace serpentine::tsp

#endif  // SERPENTINE_TSP_EXACT_H_
