#include "serpentine/tsp/locate_cost.h"

#include <algorithm>
#include <typeinfo>
#include <utility>

#include "serpentine/tape/geometry.h"
#include "serpentine/tape/params.h"
#include "serpentine/util/check.h"

namespace serpentine::tsp {

LocateCostSoA::LocateCostSoA(const tape::LocateModel& model,
                             std::vector<tape::SegmentId> out_positions,
                             std::vector<tape::SegmentId> in_positions)
    : n_(static_cast<int>(out_positions.size())),
      model_(&model),
      out_seg_(std::move(out_positions)),
      in_seg_(std::move(in_positions)) {
  SERPENTINE_CHECK_EQ(out_seg_.size(), in_seg_.size());
  // The kernel replays Dlt4000LocateModel's arithmetic, so it is only safe
  // for exactly that type — PerturbedLocateModel and PhysicalDrive wrap a
  // Dlt4000 model but answer differently, and they are distinct types.
  fast_ = typeid(model) == typeid(tape::Dlt4000LocateModel);
  if (!fast_) return;

  const auto& dlt = static_cast<const tape::Dlt4000LocateModel&>(model);
  const tape::TapeGeometry& g = dlt.geometry();
  const tape::DriveTimings& t = dlt.timings();
  read_seconds_per_section_ = t.read_seconds_per_section;
  scan_seconds_per_section_ = t.scan_seconds_per_section;
  scan_overhead_seconds_ = t.scan_overhead_seconds;
  track_switch_seconds_ = t.track_switch_seconds;
  reversal_penalty_seconds_ = t.reversal_penalty_seconds;

  out_track_.resize(n_);
  in_track_.resize(n_);
  out_rsec_.resize(n_);
  in_rsec_.resize(n_);
  out_ppos_.resize(n_);
  in_ppos_.resize(n_);
  in_kp_ppos_.resize(n_);
  in_kp_read_seconds_.resize(n_);
  out_forward_.resize(n_);
  for (int c = 0; c < n_; ++c) {
    const tape::SegmentId src = out_seg_[c];
    out_track_[c] = g.TrackOf(src);
    out_rsec_[c] = g.ReadingSectionOf(src);
    out_ppos_[c] = g.PhysicalPosition(src);
    out_forward_[c] = g.IsForwardTrack(out_track_[c]) ? 1 : 0;

    const tape::SegmentId dst = in_seg_[c];
    const int track_d = g.TrackOf(dst);
    const int r_d = g.ReadingSectionOf(dst);
    const double p_d = g.PhysicalPosition(dst);
    in_track_[c] = track_d;
    in_rsec_[c] = r_d;
    in_ppos_[c] = p_d;
    // Key point two before the destination, clamped to the beginning of
    // the track (locate_model.cc PlanLocate), and its read-forward leg.
    const int r_kp = std::max(0, r_d - 1);
    const double p_kp = g.KeyPointPhysical(track_d, r_kp);
    in_kp_ppos_[c] = p_kp;
    in_kp_read_seconds_[c] =
        std::abs(p_d - p_kp) * read_seconds_per_section_;
  }
}

}  // namespace serpentine::tsp
