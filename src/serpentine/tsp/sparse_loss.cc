#include "serpentine/tsp/sparse_loss.h"

#include <algorithm>

#include "serpentine/tsp/loss.h"
#include "serpentine/util/check.h"

namespace serpentine::tsp {
namespace {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<int> SolveSparseLossPath(
    int n, const std::vector<std::vector<SparseEdge>>& out_edges,
    const std::function<double(int, int)>& full_cost,
    SparseLossStats* stats) {
  SERPENTINE_CHECK_GT(n, 0);
  SERPENTINE_CHECK_EQ(static_cast<int>(out_edges.size()), n);
  if (n == 1) return {0};

  if (stats != nullptr) {
    for (const auto& row : out_edges)
      stats->sparse_edges += static_cast<int>(row.size());
  }

  std::vector<int> out_choice(n, -1);
  std::vector<int> in_choice(n, -1);
  UnionFind fragments(n);

  auto available = [&](int u, int v) {
    return u != v && v != 0 && out_choice[u] < 0 && in_choice[v] < 0 &&
           fragments.Find(u) != fragments.Find(v);
  };

  // Sparse LOSS phase: per iteration pick, among candidate edges only, the
  // cheapest edge at the city with maximal loss. Candidate lists are short,
  // so the per-iteration scan is O(n log n) worst case.
  while (true) {
    int best_u = -1, best_v = -1;
    double best_loss = -1.0;
    double best_edge = kInfiniteCost;
    for (int u = 0; u < n; ++u) {
      if (out_choice[u] >= 0) continue;
      int b = -1;
      double bc = kInfiniteCost, sc = kInfiniteCost;
      for (const SparseEdge& e : out_edges[u]) {
        if (!available(u, e.to)) continue;
        if (e.cost < bc) {
          sc = bc;
          bc = e.cost;
          b = e.to;
        } else if (e.cost < sc) {
          sc = e.cost;
        }
      }
      if (b < 0) continue;
      double loss = sc - bc;
      // Tie-break toward the cheaper edge, matching the dense solver.
      if (loss > best_loss || (loss == best_loss && bc < best_edge)) {
        best_loss = loss;
        best_edge = bc;
        best_u = u;
        best_v = b;
      }
    }
    if (best_u < 0) break;  // LOSS "can proceed no further" on this graph
    out_choice[best_u] = best_v;
    in_choice[best_v] = best_u;
    fragments.Union(best_u, best_v);
    if (stats != nullptr) ++stats->sparse_commits;
  }

  // Collect the partial paths. Heads are cities without an in-edge; the
  // start city is always a head (edges into it are forbidden).
  std::vector<std::vector<int>> chains;
  int zero_chain = -1;
  for (int c = 0; c < n; ++c) {
    if (in_choice[c] >= 0) continue;
    std::vector<int> chain;
    for (int at = c; at >= 0; at = out_choice[at]) chain.push_back(at);
    if (c == 0) zero_chain = static_cast<int>(chains.size());
    chains.push_back(std::move(chain));
  }
  SERPENTINE_CHECK_GE(zero_chain, 0);
  if (stats != nullptr)
    stats->fragments_after_sparse = static_cast<int>(chains.size());

  if (chains.size() == 1) return chains[0];

  // Contraction phase: one dense city per partial path, linked with the
  // dense LOSS rule using exact costs from tail of one chain to head of
  // the next. The chain containing city 0 becomes contracted city 0.
  std::swap(chains[0], chains[zero_chain]);
  int k = static_cast<int>(chains.size());
  if (stats != nullptr) stats->contraction_cities = k;
  CostMatrix contracted = CostMatrix::Build(k, [&](int a, int b) {
    return full_cost(chains[a].back(), chains[b].front());
  });
  std::vector<int> order = SolveLossPath(contracted);

  std::vector<int> result;
  result.reserve(n);
  for (int chain_index : order) {
    const auto& chain = chains[chain_index];
    result.insert(result.end(), chain.begin(), chain.end());
  }
  SERPENTINE_CHECK_EQ(static_cast<int>(result.size()), n);
  return result;
}

}  // namespace serpentine::tsp
