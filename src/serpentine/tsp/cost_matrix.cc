#include "serpentine/tsp/cost_matrix.h"

#include <vector>

namespace serpentine::tsp {

double PathCost(const CostMatrix& m, const std::vector<int>& order) {
  double total = 0.0;
  for (size_t i = 1; i < order.size(); ++i) {
    total += m.cost(order[i - 1], order[i]);
  }
  return total;
}

bool IsValidPath(const CostMatrix& m, const std::vector<int>& order) {
  if (static_cast<int>(order.size()) != m.size()) return false;
  if (order.empty() || order[0] != 0) return false;
  std::vector<bool> seen(m.size(), false);
  for (int c : order) {
    if (c < 0 || c >= m.size() || seen[c]) return false;
    seen[c] = true;
  }
  return true;
}

}  // namespace serpentine::tsp
