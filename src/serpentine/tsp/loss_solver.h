// Header-only, cost-source-generic implementation of the LOSS greedy
// heuristic (see loss.h for the algorithm description). The solver is a
// template over the cost source so the same committed-edge machinery runs
// against a dense CostMatrix (the historical shape) or a lazily-evaluated
// source like LocateCostSoA that prices edges on demand and never
// materializes the O(n²) matrix.
//
// A cost source must provide:
//   int size() const;              // number of cities, city 0 = start
//   double cost(int i, int j) const;  // edge i→j; kInfiniteCost for
//                                     // self-loops and edges into city 0
#ifndef SERPENTINE_TSP_LOSS_SOLVER_H_
#define SERPENTINE_TSP_LOSS_SOLVER_H_

#include <vector>

#include "serpentine/tsp/cost_matrix.h"
#include "serpentine/tsp/loss.h"
#include "serpentine/util/check.h"

namespace serpentine::tsp {
namespace internal {

/// Union-find over path fragments; adding edge u→v is forbidden when u and
/// v already belong to the same fragment (it would close a cycle).
class FragmentSet {
 public:
  explicit FragmentSet(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

/// Cached two smallest available edges of one row/column.
struct TwoBest {
  int best = -1;
  double best_cost = kInfiniteCost;
  int second = -1;
  double second_cost = kInfiniteCost;

  double loss() const {
    if (best < 0) return -1.0;  // no available edge: never selected
    return second_cost - best_cost;  // +inf when the edge is forced
  }
};

}  // namespace internal

/// The LOSS committed-edge solver over any cost source (see file comment).
/// The edge-selection rule, tie-breaks, and cache-revalidation order are
/// identical for every cost source, so dense and lazy runs over equal costs
/// produce bit-identical paths.
template <typename Costs>
class LossSolver {
 public:
  LossSolver(const Costs& m, LossStats* stats)
      : m_(m),
        n_(m.size()),
        stats_(stats),
        fragments_(m.size()),
        out_choice_(m.size(), -1),
        in_choice_(m.size(), -1),
        out_cache_(m.size()),
        in_cache_(m.size()) {}

  std::vector<int> Solve() {
    // Commit n-1 edges; city 0 never receives an in-edge, so the chain of
    // committed edges forms a single path rooted at 0.
    for (int committed = 0; committed < n_ - 1; ++committed) {
      if (stats_ != nullptr) ++stats_->iterations;
      int city = -1;
      bool use_out = true;
      double best_loss = -1.0;
      double best_edge = kInfiniteCost;
      // Ties in loss (common once edges become forced, where the loss is
      // +inf) break toward the cheaper committed edge.
      auto better = [&](double l, double edge) {
        return l > best_loss || (l == best_loss && edge < best_edge);
      };
      for (int c = 0; c < n_; ++c) {
        if (out_choice_[c] < 0) {
          RefreshOut(c);
          double l = out_cache_[c].loss();
          if (better(l, out_cache_[c].best_cost)) {
            best_loss = l;
            best_edge = out_cache_[c].best_cost;
            city = c;
            use_out = true;
          }
        }
        if (c != 0 && in_choice_[c] < 0) {
          RefreshIn(c);
          double l = in_cache_[c].loss();
          if (better(l, in_cache_[c].best_cost)) {
            best_loss = l;
            best_edge = in_cache_[c].best_cost;
            city = c;
            use_out = false;
          }
        }
      }
      SERPENTINE_CHECK_GE(city, 0);
      int u, v;
      if (use_out) {
        u = city;
        v = out_cache_[city].best;
      } else {
        u = in_cache_[city].best;
        v = city;
      }
      SERPENTINE_CHECK_GE(u, 0);
      SERPENTINE_CHECK_GE(v, 0);
      out_choice_[u] = v;
      in_choice_[v] = u;
      fragments_.Union(u, v);
    }

    std::vector<int> order;
    order.reserve(n_);
    int at = 0;
    order.push_back(0);
    while (out_choice_[at] >= 0) {
      at = out_choice_[at];
      order.push_back(at);
    }
    SERPENTINE_CHECK_EQ(static_cast<int>(order.size()), n_);
    return order;
  }

 private:
  /// An out-edge u→v is available iff v still needs an in-edge, is not the
  /// start, and does not close a cycle.
  bool OutAvailable(int u, int v) {
    return v != u && v != 0 && in_choice_[v] < 0 &&
           fragments_.Find(u) != fragments_.Find(v);
  }
  bool InAvailable(int u, int v) {
    return u != v && out_choice_[u] < 0 &&
           fragments_.Find(u) != fragments_.Find(v);
  }

  void RefreshOut(int u) {
    internal::TwoBest& tb = out_cache_[u];
    if (tb.best >= 0 && OutAvailable(u, tb.best) &&
        (tb.second < 0 || OutAvailable(u, tb.second))) {
      return;  // cache still valid
    }
    if (stats_ != nullptr) ++stats_->row_rescans;
    tb = internal::TwoBest();
    for (int v = 0; v < n_; ++v) {
      if (!OutAvailable(u, v)) continue;
      double c = m_.cost(u, v);
      if (c < tb.best_cost) {
        tb.second = tb.best;
        tb.second_cost = tb.best_cost;
        tb.best = v;
        tb.best_cost = c;
      } else if (c < tb.second_cost) {
        tb.second = v;
        tb.second_cost = c;
      }
    }
  }

  void RefreshIn(int v) {
    internal::TwoBest& tb = in_cache_[v];
    if (tb.best >= 0 && InAvailable(tb.best, v) &&
        (tb.second < 0 || InAvailable(tb.second, v))) {
      return;
    }
    if (stats_ != nullptr) ++stats_->row_rescans;
    tb = internal::TwoBest();
    for (int u = 0; u < n_; ++u) {
      if (!InAvailable(u, v)) continue;
      double c = m_.cost(u, v);
      if (c < tb.best_cost) {
        tb.second = tb.best;
        tb.second_cost = tb.best_cost;
        tb.best = u;
        tb.best_cost = c;
      } else if (c < tb.second_cost) {
        tb.second = u;
        tb.second_cost = c;
      }
    }
  }

  const Costs& m_;
  int n_;
  LossStats* stats_;
  internal::FragmentSet fragments_;
  std::vector<int> out_choice_;
  std::vector<int> in_choice_;
  std::vector<internal::TwoBest> out_cache_;
  std::vector<internal::TwoBest> in_cache_;
};

/// Builds a LOSS Hamiltonian path over any cost source.
template <typename Costs>
std::vector<int> SolveLossPathOver(const Costs& costs,
                                   LossStats* stats = nullptr) {
  if (costs.size() == 1) return {0};
  return LossSolver<Costs>(costs, stats).Solve();
}

}  // namespace serpentine::tsp

#endif  // SERPENTINE_TSP_LOSS_SOLVER_H_
