#include "serpentine/tsp/loss.h"

#include "serpentine/tsp/loss_solver.h"

namespace serpentine::tsp {

std::vector<int> SolveLossPath(const CostMatrix& m) {
  return SolveLossPathOver(m, nullptr);
}

std::vector<int> SolveLossPathWithStats(const CostMatrix& m,
                                        LossStats* stats) {
  return SolveLossPathOver(m, stats);
}

}  // namespace serpentine::tsp
