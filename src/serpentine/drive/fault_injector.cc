#include "serpentine/drive/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>

#include "serpentine/util/check.h"
#include "serpentine/util/status.h"

namespace serpentine::drive {

const char* FaultTypeName(FaultType t) {
  switch (t) {
    case FaultType::kNone:
      return "none";
    case FaultType::kTransientReadError:
      return "transient-read";
    case FaultType::kLocateOvershoot:
      return "locate-overshoot";
    case FaultType::kDriveReset:
      return "drive-reset";
    case FaultType::kPermanentMediaError:
      return "permanent-media";
    case FaultType::kRobotFault:
      return "robot-fault";
  }
  return "unknown";
}

ErrorClass ClassifyFault(FaultType t) {
  return t == FaultType::kPermanentMediaError ? ErrorClass::kPermanent
                                              : ErrorClass::kRetryable;
}

bool FaultProfile::any() const {
  return transient_read_rate > 0 || locate_overshoot_rate > 0 ||
         drive_reset_rate > 0 || permanent_error_rate > 0 ||
         mount_failure_rate > 0;
}

FaultProfile FaultProfile::Scaled(double factor) const {
  auto scale = [factor](double rate) {
    return std::clamp(rate * factor, 0.0, 1.0);
  };
  FaultProfile p = *this;
  p.transient_read_rate = scale(transient_read_rate);
  p.locate_overshoot_rate = scale(locate_overshoot_rate);
  p.drive_reset_rate = scale(drive_reset_rate);
  p.permanent_error_rate = scale(permanent_error_rate);
  p.mount_failure_rate = scale(mount_failure_rate);
  return p;
}

FaultProfile FaultProfile::None() { return FaultProfile{}; }

FaultProfile FaultProfile::Light() {
  FaultProfile p;
  p.transient_read_rate = 0.01;
  p.locate_overshoot_rate = 0.005;
  p.drive_reset_rate = 0.0005;
  p.permanent_error_rate = 0.0002;
  p.mount_failure_rate = 0.01;
  return p;
}

FaultProfile FaultProfile::Heavy() {
  FaultProfile p;
  p.transient_read_rate = 0.08;
  p.locate_overshoot_rate = 0.05;
  p.drive_reset_rate = 0.01;
  p.permanent_error_rate = 0.005;
  p.mount_failure_rate = 0.1;
  return p;
}

serpentine::Status ValidateFaultProfile(const FaultProfile& profile) {
  auto check_rate = [](double rate, const char* name) -> Status {
    if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
      return InvalidArgumentError(
          std::string("FaultProfile: ") + name +
          " must be a probability in [0, 1], got " + std::to_string(rate));
    }
    return OkStatus();
  };
  auto check_timing = [](double seconds, const char* name) -> Status {
    if (!std::isfinite(seconds) || seconds < 0.0) {
      return InvalidArgumentError(
          std::string("FaultProfile: ") + name +
          " must be finite and >= 0 seconds, got " + std::to_string(seconds));
    }
    return OkStatus();
  };
  SERPENTINE_RETURN_IF_ERROR(
      check_rate(profile.transient_read_rate, "transient_read_rate"));
  SERPENTINE_RETURN_IF_ERROR(
      check_rate(profile.locate_overshoot_rate, "locate_overshoot_rate"));
  SERPENTINE_RETURN_IF_ERROR(
      check_rate(profile.drive_reset_rate, "drive_reset_rate"));
  SERPENTINE_RETURN_IF_ERROR(
      check_rate(profile.permanent_error_rate, "permanent_error_rate"));
  SERPENTINE_RETURN_IF_ERROR(
      check_rate(profile.mount_failure_rate, "mount_failure_rate"));
  SERPENTINE_RETURN_IF_ERROR(check_timing(profile.overshoot_settle_seconds,
                                          "overshoot_settle_seconds"));
  SERPENTINE_RETURN_IF_ERROR(check_timing(profile.reset_seconds,
                                          "reset_seconds"));
  SERPENTINE_RETURN_IF_ERROR(check_timing(profile.reread_overhead_seconds,
                                          "reread_overhead_seconds"));
  SERPENTINE_RETURN_IF_ERROR(check_timing(profile.mount_retry_seconds,
                                          "mount_retry_seconds"));
  return OkStatus();
}

serpentine::StatusOr<FaultProfile> LoadFaultProfile(const std::string& spec) {
  if (spec == "none") return FaultProfile::None();
  if (spec == "light") return FaultProfile::Light();
  if (spec == "heavy") return FaultProfile::Heavy();

  std::ifstream in(spec);
  if (!in) {
    return NotFoundError("fault profile is not a known name "
                         "(none|light|heavy) or a readable file: " +
                         spec);
  }
  FaultProfile p;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    // Trim whitespace.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    size_t last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError(spec + ":" + std::to_string(lineno) +
                                  ": expected key=value, got '" + line + "'");
    }
    std::string key = line.substr(0, eq);
    key.erase(key.find_last_not_of(" \t") + 1);
    std::string value_text = line.substr(eq + 1);
    char* end = nullptr;
    double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) {
      return InvalidArgumentError(spec + ":" + std::to_string(lineno) +
                                  ": bad number '" + value_text + "'");
    }
    if (key == "transient_read_rate") {
      p.transient_read_rate = value;
    } else if (key == "locate_overshoot_rate") {
      p.locate_overshoot_rate = value;
    } else if (key == "drive_reset_rate") {
      p.drive_reset_rate = value;
    } else if (key == "permanent_error_rate") {
      p.permanent_error_rate = value;
    } else if (key == "mount_failure_rate") {
      p.mount_failure_rate = value;
    } else if (key == "overshoot_settle_seconds") {
      p.overshoot_settle_seconds = value;
    } else if (key == "reset_seconds") {
      p.reset_seconds = value;
    } else if (key == "reread_overhead_seconds") {
      p.reread_overhead_seconds = value;
    } else if (key == "mount_retry_seconds") {
      p.mount_retry_seconds = value;
    } else if (key == "seed") {
      p.seed = static_cast<int32_t>(value);
    } else {
      return InvalidArgumentError(spec + ":" + std::to_string(lineno) +
                                  ": unknown fault profile key '" + key +
                                  "'");
    }
  }
  Status valid = ValidateFaultProfile(p);
  if (!valid.ok()) return AnnotateStatus(valid, spec);
  return p;
}

FaultInjector::FaultInjector(const FaultProfile& profile)
    : profile_(profile), rng_(profile.seed) {}

void FaultInjector::Reseed(int32_t seed) { rng_.Seed(seed); }

void FaultInjector::ReseedState(uint64_t state) { rng_.SeedState(state); }

FaultType FaultInjector::DrawLocateFault() {
  double u = rng_.NextDouble();
  if (u < profile_.drive_reset_rate) {
    ++faults_injected_;
    return FaultType::kDriveReset;
  }
  if (u < profile_.drive_reset_rate + profile_.locate_overshoot_rate) {
    ++faults_injected_;
    return FaultType::kLocateOvershoot;
  }
  return FaultType::kNone;
}

FaultType FaultInjector::DrawReadFault(tape::SegmentId segment) {
  // Sticky first: a known-bad segment fails without consuming a draw, so
  // retrying it cannot perturb the fault stream of later operations.
  if (IsBadSegment(segment)) return FaultType::kPermanentMediaError;
  double u = rng_.NextDouble();
  if (u < profile_.permanent_error_rate) {
    bad_segments_.insert(segment);
    ++faults_injected_;
    return FaultType::kPermanentMediaError;
  }
  if (u < profile_.permanent_error_rate + profile_.transient_read_rate) {
    ++faults_injected_;
    return FaultType::kTransientReadError;
  }
  return FaultType::kNone;
}

bool FaultInjector::DrawMountFault() {
  if (rng_.NextDouble() < profile_.mount_failure_rate) {
    ++faults_injected_;
    return true;
  }
  return false;
}

tape::SegmentId FaultInjector::OvershootTarget(
    const tape::TapeGeometry& geometry, tape::SegmentId dst) {
  // Settle within roughly one reading section of the destination — the
  // regime the paper flags as under-modeled near track ends.
  int64_t span = std::max<int64_t>(
      1, geometry.total_segments() /
             (static_cast<int64_t>(geometry.num_tracks()) *
              geometry.sections_per_track()));
  double u = rng_.NextDouble() * 2.0 - 1.0;  // one draw: magnitude + sign
  int64_t offset = static_cast<int64_t>(u * static_cast<double>(span));
  if (offset == 0) offset = u < 0 ? -1 : 1;
  tape::SegmentId landed = std::clamp<tape::SegmentId>(
      dst + offset, 0, geometry.total_segments() - 1);
  if (landed == dst) landed = dst > 0 ? dst - 1 : dst + 1;
  return landed;
}

}  // namespace serpentine::drive
