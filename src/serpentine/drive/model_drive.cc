#include "serpentine/drive/model_drive.h"

#include <algorithm>

#include "serpentine/util/check.h"

namespace serpentine::drive {

OpResult ModelDrive::Locate(tape::SegmentId dst) {
  SERPENTINE_CHECK_GE(dst, 0);
  SERPENTINE_CHECK_LE(dst, model_.geometry().total_segments() - 1);
  OpResult r;
  r.times.locate_seconds = model_.LocateSeconds(position_, dst);
  position_ = dst;
  r.position = position_;
  return r;
}

OpResult ModelDrive::ReadSegments(tape::SegmentId from, tape::SegmentId to) {
  SERPENTINE_CHECK_GE(from, 0);
  SERPENTINE_CHECK_LE(from, to);
  SERPENTINE_CHECK_LE(to, model_.geometry().total_segments() - 1);
  OpResult r;
  r.times.read_seconds = model_.ReadSeconds(from, to);
  r.segments_read = to - from + 1;
  // The head ends just past the span, clamped to the tape's last segment
  // (sched::OutPosition's rule).
  position_ = std::min<tape::SegmentId>(
      to + 1, model_.geometry().total_segments() - 1);
  r.position = position_;
  return r;
}

OpResult ModelDrive::Rewind() {
  OpResult r;
  r.times.rewind_seconds = model_.RewindSeconds(position_);
  position_ = 0;
  r.position = 0;
  return r;
}

}  // namespace serpentine::drive
