#include "serpentine/drive/tracing_drive.h"

#include <cstdio>
#include <string>

#include "serpentine/obs/trace.h"

namespace serpentine::drive {
namespace {

constexpr const char* kCategory = "drive";

}  // namespace

void TracingDrive::Emit(const char* op, const OpResult& r) {
  double start = clock_seconds_;
  double total = r.times.total();
  clock_seconds_ = start + total;

  obs::TraceRecorder* recorder = obs::TraceRecorder::active();
  if (recorder == nullptr) return;

  char args[256];
  std::snprintf(args, sizeof(args),
                "{\"status\":\"%s\",\"position\":%lld,\"segments_read\":%lld,"
                "\"locate_s\":%.6f,\"read_s\":%.6f,\"rewind_s\":%.6f,"
                "\"recovery_s\":%.6f}",
                OpStatusName(r.status), static_cast<long long>(r.position),
                static_cast<long long>(r.segments_read),
                r.times.locate_seconds, r.times.read_seconds,
                r.times.rewind_seconds, r.times.recovery_seconds);
  recorder->CompleteEvent(obs::TraceClock::kVirtual, kCategory, op, start,
                          clock_seconds_, args);

  // Per-phase child spans, laid out sequentially inside the op span in the
  // order the accounting charges them. Nested by construction: the
  // cumulative boundaries are bracketed by [start, start + total] and the
  // seconds→µs conversion is monotone.
  double t = start;
  struct Phase {
    const char* name;
    double seconds;
  } phases[] = {{"locate", r.times.locate_seconds},
                {"read", r.times.read_seconds},
                {"rewind", r.times.rewind_seconds},
                {"recovery", r.times.recovery_seconds}};
  for (const Phase& phase : phases) {
    if (phase.seconds <= 0.0) continue;
    recorder->CompleteEvent(obs::TraceClock::kVirtual, kCategory,
                            std::string(op) + ":" + phase.name, t,
                            t + phase.seconds);
    t += phase.seconds;
  }
}

OpResult TracingDrive::Locate(tape::SegmentId dst) {
  OpResult r = inner_->Locate(dst);
  Emit("locate", r);
  return r;
}

OpResult TracingDrive::ReadSegments(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->ReadSegments(from, to);
  Emit("read", r);
  return r;
}

OpResult TracingDrive::ScanSegments(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->ScanSegments(from, to);
  Emit("scan", r);
  return r;
}

OpResult TracingDrive::DeliverSpan(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->DeliverSpan(from, to);
  Emit("deliver", r);
  return r;
}

OpResult TracingDrive::Rewind() {
  OpResult r = inner_->Rewind();
  Emit("rewind", r);
  return r;
}

}  // namespace serpentine::drive
