#include "serpentine/drive/drive.h"

namespace serpentine::drive {

const char* OpStatusName(OpStatus s) {
  switch (s) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kTransientReadError:
      return "transient-read";
    case OpStatus::kLocateOvershoot:
      return "locate-overshoot";
    case OpStatus::kDriveReset:
      return "drive-reset";
    case OpStatus::kPermanentMediaError:
      return "permanent-media";
    case OpStatus::kCircuitOpen:
      return "circuit-open";
  }
  return "unknown";
}

bool IsRetryable(OpStatus s) {
  // kCircuitOpen is deliberately excluded: it is curable by *waiting out
  // the cooldown*, not by the bounded-backoff retry loops this predicate
  // gates — those would burn their budget against a breaker that refuses
  // everything until its timer expires.
  return s == OpStatus::kTransientReadError ||
         s == OpStatus::kLocateOvershoot || s == OpStatus::kDriveReset;
}

}  // namespace serpentine::drive
