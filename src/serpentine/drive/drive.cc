#include "serpentine/drive/drive.h"

namespace serpentine::drive {

const char* OpStatusName(OpStatus s) {
  switch (s) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kTransientReadError:
      return "transient-read";
    case OpStatus::kLocateOvershoot:
      return "locate-overshoot";
    case OpStatus::kDriveReset:
      return "drive-reset";
    case OpStatus::kPermanentMediaError:
      return "permanent-media";
  }
  return "unknown";
}

bool IsRetryable(OpStatus s) {
  return s == OpStatus::kTransientReadError ||
         s == OpStatus::kLocateOvershoot || s == OpStatus::kDriveReset;
}

}  // namespace serpentine::drive
