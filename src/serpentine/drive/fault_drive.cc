#include "serpentine/drive/fault_drive.h"

namespace serpentine::drive {

OpResult FaultDrive::Locate(tape::SegmentId dst) {
  if (injector_ == nullptr) return inner_->Locate(dst);
  const FaultProfile& profile = injector_->profile();
  switch (injector_->DrawLocateFault()) {
    case FaultType::kNone:
      return inner_->Locate(dst);
    case FaultType::kDriveReset: {
      // Controller restart, then the transport force-rewinds to BOT. The
      // whole charge is recovery: no useful positioning happened.
      OpResult r;
      r.status = OpStatus::kDriveReset;
      r.times.recovery_seconds =
          profile.reset_seconds + model().RewindSeconds(Position());
      SetPosition(0);
      r.position = 0;
      return r;
    }
    default: {  // kLocateOvershoot
      // The full locate's motion is wasted and the head settles near the
      // target (the paper's under-modeled track-end region), plus settle
      // time before it can try again.
      OpResult r;
      r.status = OpStatus::kLocateOvershoot;
      r.times.recovery_seconds = model().LocateSeconds(Position(), dst) +
                                 profile.overshoot_settle_seconds;
      SetPosition(injector_->OvershootTarget(geometry(), dst));
      r.position = Position();
      return r;
    }
  }
}

OpResult FaultDrive::ReadSegments(tape::SegmentId from, tape::SegmentId to) {
  if (injector_ == nullptr) return inner_->ReadSegments(from, to);
  const FaultProfile& profile = injector_->profile();
  switch (injector_->DrawReadFault(from)) {
    case FaultType::kNone:
      return inner_->ReadSegments(from, to);
    case FaultType::kPermanentMediaError: {
      OpResult r;
      r.status = OpStatus::kPermanentMediaError;
      r.times.recovery_seconds = profile.reread_overhead_seconds;
      r.position = Position();
      return r;
    }
    default: {  // kTransientReadError
      // The failed pass streamed the span for nothing and the drive
      // repositioned internally; the head is back at the span start.
      OpResult r;
      r.status = OpStatus::kTransientReadError;
      r.times.recovery_seconds =
          profile.reread_overhead_seconds + model().ReadSeconds(from, to);
      r.position = Position();
      return r;
    }
  }
}

OpResult FaultDrive::DeliverSpan(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->DeliverSpan(from, to);
  if (injector_ == nullptr) return r;
  const FaultProfile& profile = injector_->profile();
  FaultType fault = injector_->DrawReadFault(from);
  if (fault == FaultType::kTransientReadError) {
    // Re-read the span on the fly: one wasted pass plus overhead, then
    // one more draw decides the delivery (a second transient error is
    // absorbed by the stream's ECC retry at no extra charge).
    r.times.recovery_seconds +=
        profile.reread_overhead_seconds + model().ReadSeconds(from, to);
    r.transient_read_errors += 1;
    fault = injector_->DrawReadFault(from);
  }
  if (fault == FaultType::kPermanentMediaError) {
    r.status = OpStatus::kPermanentMediaError;
    r.times.recovery_seconds += profile.reread_overhead_seconds;
  }
  return r;
}

}  // namespace serpentine::drive
