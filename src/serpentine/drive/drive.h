// The stateful drive abstraction the executors run against.
//
// The paper's whole pipeline — estimate (§5), execute, validate (Fig 8),
// perturb (Fig 9/10) — is "same schedule, different timing source". A
// drive::Drive owns the head position and answers one operation at a time
// with a per-op time breakdown, so the timing source, fault process, and
// observability are stackable decorators instead of parameters threaded
// through every layer:
//
//   ModelDrive(model)                      — ideal timing of any LocateModel
//   FaultDrive(&inner, &injector)          — seeded structural faults
//   MeteredDrive(&inner)                   — op counters + latency histograms
//
// Stacks compose: Metered(Fault(Model)) meters what execution experienced
// (faults included); Fault(Metered(Model)) meters only the useful work the
// fault layer let through. Executors (sim::ExecuteSchedule,
// sim::RecoveringExecutor, the queue simulator) consume a Drive& and never
// see which stack they run on.
#ifndef SERPENTINE_DRIVE_DRIVE_H_
#define SERPENTINE_DRIVE_DRIVE_H_

#include <cstdint>

#include "serpentine/tape/geometry.h"
#include "serpentine/tape/locate_model.h"
#include "serpentine/tape/types.h"

namespace serpentine::drive {

/// Outcome class of one drive operation. Non-kOk statuses are produced by
/// fault-injecting decorators; the base ModelDrive always reports kOk.
enum class OpStatus {
  kOk = 0,
  /// Soft read error: the pass delivered no data; re-issue the read.
  kTransientReadError,
  /// Positioning settled on the wrong segment; the head is where
  /// OpResult::position says, not at the requested target.
  kLocateOvershoot,
  /// Drive firmware soft reset: the transport rewound to BOT; any plan
  /// built for the old head position is stale.
  kDriveReset,
  /// Media defect: the span is unreadable now and forever.
  kPermanentMediaError,
  /// A health decorator's circuit breaker is open: the operation was
  /// refused without touching the transport. OpResult::retry_after_seconds
  /// says how long until the breaker will admit a probe; retrying sooner
  /// just fails fast again.
  kCircuitOpen,
};

/// Stable lowercase name ("ok", "transient-read", ...).
const char* OpStatusName(OpStatus s);

/// True for statuses a bounded retry can cure.
bool IsRetryable(OpStatus s);

/// Per-phase time breakdown of one operation. Useful work lands in the
/// locate/read/rewind buckets; wasted motion, settle/reset penalties, and
/// failed read passes land in recovery_seconds — the same split
/// ExecutionResult reports, so decorator meters and executor totals agree.
struct OpTimes {
  double locate_seconds = 0.0;
  double read_seconds = 0.0;
  double rewind_seconds = 0.0;
  double recovery_seconds = 0.0;

  double total() const {
    return locate_seconds + read_seconds + rewind_seconds + recovery_seconds;
  }
};

/// Result of one drive operation.
struct OpResult {
  OpStatus status = OpStatus::kOk;
  OpTimes times;
  /// Head position after the operation.
  tape::SegmentId position = 0;
  /// Segments transferred by this operation (read ops only).
  int64_t segments_read = 0;
  /// Transient read errors absorbed inside the operation (scan-delivery
  /// re-reads fold one retry into a single DeliverSpan op).
  int transient_read_errors = 0;
  /// For kCircuitOpen only: virtual seconds until the breaker's cooldown
  /// expires and a half-open probe will be admitted. Callers that wait this
  /// long before re-issuing are guaranteed the next op reaches the
  /// transport (as the probe). Zero for every other status.
  double retry_after_seconds = 0.0;

  bool ok() const { return status == OpStatus::kOk; }
};

/// A stateful serpentine drive: one head position, one operation at a time.
///
/// Contract notes shared by all implementations:
///   * Read ops take explicit (from, to) spans and charge from `from`
///     regardless of the current head position — positioning is the
///     executor's job (call Locate first); this keeps every op's cost a
///     pure function of its arguments and the model, which is what makes
///     the Drive path bit-identical to the raw-model execution path.
///   * The head ends a read just past the span, clamped to the last
///     segment on tape (sched::OutPosition's rule).
///   * Decorators forward every operation to the wrapped drive and may
///     adjust the result (add recovery time, flip the status, move the
///     head via SetPosition).
class Drive {
 public:
  virtual ~Drive() = default;

  /// Positions the head at the start of `dst`, ready to read. One attempt:
  /// fault decorators report overshoot/reset instead of looping.
  virtual OpResult Locate(tape::SegmentId dst) = 0;

  /// One service read of segments `from`..`to` inclusive (head assumed at
  /// `from`). Fault decorators draw per-span read faults here.
  virtual OpResult ReadSegments(tape::SegmentId from, tape::SegmentId to) = 0;

  /// Streaming pass over `from`..`to` (the READ baseline's sequential
  /// scan). Never faults: structural read errors surface per delivered
  /// span (DeliverSpan), not per pass. Default: same timing as a service
  /// read.
  virtual OpResult ScanSegments(tape::SegmentId from, tape::SegmentId to) {
    return ReadSegments(from, to);
  }

  /// Delivery of an already-streamed span to the client during a scan
  /// (zero cost on an ideal drive). Fault decorators draw the span's read
  /// fault here, absorbing one on-the-fly re-read: a transient error
  /// charges a re-read of the span and redraws; only a permanent media
  /// error fails the delivery. Does not move the head.
  virtual OpResult DeliverSpan(tape::SegmentId from, tape::SegmentId to) {
    (void)from;
    (void)to;
    OpResult r;
    r.position = Position();
    return r;
  }

  /// Rewinds to the beginning of tape from the current position.
  virtual OpResult Rewind() = 0;

  /// Current head position.
  virtual tape::SegmentId Position() const = 0;

  /// Teleports the head at zero cost. Two legitimate callers: executors
  /// aligning the head with a schedule's planned start (the schedule was
  /// built from the live position, so this is a no-op there), and fault
  /// decorators reporting where a faulted transport actually settled.
  virtual void SetPosition(tape::SegmentId position) = 0;

  /// The timing model governing this drive (decorators forward to the
  /// wrapped drive's). Executors use it for pure timing queries —
  /// completion stamps, repair planning — that must not consume fault
  /// draws or advance any state.
  virtual const tape::LocateModel& model() const = 0;

  /// The mounted tape's geometry (the model's belief).
  const tape::TapeGeometry& geometry() const { return model().geometry(); }
};

}  // namespace serpentine::drive

#endif  // SERPENTINE_DRIVE_DRIVE_H_
