// MeteredDrive: the observability seed — a transparent decorator that
// counts operations, accumulates per-phase seconds, and keeps log-scale
// latency histograms, without changing a single reported time. Where it
// sits in the stack decides what it sees: Metered(Fault(Model)) records
// what execution experienced (faults, recovery time), Fault(Metered(Model))
// records only the useful work the fault layer let through.
#ifndef SERPENTINE_DRIVE_METERED_DRIVE_H_
#define SERPENTINE_DRIVE_METERED_DRIVE_H_

#include <cstdint>
#include <string>

#include "serpentine/drive/drive.h"
#include "serpentine/obs/histogram.h"

namespace serpentine::obs {
class MetricsRegistry;
}  // namespace serpentine::obs

namespace serpentine::drive {

/// The log₂-bucket latency histogram, now hosted in obs/ (this alias keeps
/// the original drive-layer spelling working; obs::Histogram adds the
/// quantile/merge API the metrics registry exports).
using LatencyHistogram = obs::Histogram;

/// Everything a MeteredDrive has observed. Phase-seconds accumulate in op
/// order, so for a fault-free execution they equal the corresponding
/// ExecutionResult fields bit for bit.
struct DriveMetrics {
  int64_t locates = 0;
  int64_t reads = 0;
  int64_t scans = 0;
  int64_t deliveries = 0;
  int64_t rewinds = 0;
  int64_t segments_read = 0;

  double locate_seconds = 0.0;
  double read_seconds = 0.0;
  double rewind_seconds = 0.0;
  double recovery_seconds = 0.0;

  /// Non-kOk op results observed, by class.
  int64_t transient_read_errors = 0;
  int64_t locate_overshoots = 0;
  int64_t drive_resets = 0;
  int64_t permanent_errors = 0;
  int64_t faults() const {
    return transient_read_errors + locate_overshoots + drive_resets +
           permanent_errors;
  }

  int64_t ops() const { return locates + reads + scans + deliveries + rewinds; }
  double busy_seconds() const {
    return locate_seconds + read_seconds + rewind_seconds + recovery_seconds;
  }

  LatencyHistogram locate_latency;
  LatencyHistogram read_latency;

  /// One JSON object (no trailing newline) with counters, phase seconds,
  /// and the non-empty histogram buckets — the op-count record
  /// tools/run_benches.sh writes next to its timing JSONL.
  std::string ToJson(const std::string& label) const;

  /// Publishes every field into `registry` under `prefix`: op counts and
  /// fault counts as counters ("<prefix>.locates", ...; added, so repeated
  /// publishes accumulate), phase seconds as gauges
  /// ("<prefix>.locate_seconds", ...; overwritten), and the latency
  /// histograms merged into "<prefix>.locate_latency" /
  /// "<prefix>.read_latency" — the bridge from a drive stack's meters to
  /// the --metrics-json snapshot; see docs/observability.md for the
  /// catalog.
  void PublishTo(obs::MetricsRegistry& registry,
                 const std::string& prefix) const;
};

/// Pass-through decorator that meters every operation of the wrapped
/// drive. Results are returned unmodified.
class MeteredDrive : public Drive {
 public:
  /// `inner` must outlive this decorator.
  explicit MeteredDrive(Drive* inner) : inner_(inner) {}

  OpResult Locate(tape::SegmentId dst) override;
  OpResult ReadSegments(tape::SegmentId from, tape::SegmentId to) override;
  OpResult ScanSegments(tape::SegmentId from, tape::SegmentId to) override;
  OpResult DeliverSpan(tape::SegmentId from, tape::SegmentId to) override;
  OpResult Rewind() override;

  tape::SegmentId Position() const override { return inner_->Position(); }
  void SetPosition(tape::SegmentId position) override {
    inner_->SetPosition(position);
  }
  const tape::LocateModel& model() const override { return inner_->model(); }

  const DriveMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_ = DriveMetrics{}; }

 private:
  /// Folds one op result into the meters (shared fault/recovery
  /// bookkeeping; phase buckets are handled per op).
  void Observe(const OpResult& r);

  Drive* inner_;
  DriveMetrics metrics_;
};

}  // namespace serpentine::drive

#endif  // SERPENTINE_DRIVE_METERED_DRIVE_H_
