#include "serpentine/drive/health_drive.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "serpentine/obs/metrics.h"
#include "serpentine/util/check.h"

namespace serpentine::drive {

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half-open";
    case BreakerState::kOpen:
      return "open";
  }
  return "unknown";
}

Status ValidateBreakerPolicy(const BreakerPolicy& policy) {
  if (policy.window_ops < 1) {
    return InvalidArgumentError("BreakerPolicy: window_ops must be >= 1, got " +
                                std::to_string(policy.window_ops));
  }
  if (policy.failure_threshold < 1 ||
      policy.failure_threshold > policy.window_ops) {
    return InvalidArgumentError(
        "BreakerPolicy: failure_threshold must be in [1, window_ops=" +
        std::to_string(policy.window_ops) + "], got " +
        std::to_string(policy.failure_threshold));
  }
  if (std::isnan(policy.slow_op_seconds) || policy.slow_op_seconds <= 0.0) {
    return InvalidArgumentError(
        "BreakerPolicy: slow_op_seconds must be > 0 (inf = disabled), got " +
        std::to_string(policy.slow_op_seconds));
  }
  if (!std::isfinite(policy.cooldown_seconds) ||
      policy.cooldown_seconds <= 0.0) {
    return InvalidArgumentError(
        "BreakerPolicy: cooldown_seconds must be finite and > 0, got " +
        std::to_string(policy.cooldown_seconds));
  }
  if (policy.half_open_successes < 1) {
    return InvalidArgumentError(
        "BreakerPolicy: half_open_successes must be >= 1, got " +
        std::to_string(policy.half_open_successes));
  }
  if (!std::isfinite(policy.fail_fast_seconds) ||
      policy.fail_fast_seconds < 0.0) {
    return InvalidArgumentError(
        "BreakerPolicy: fail_fast_seconds must be finite and >= 0, got " +
        std::to_string(policy.fail_fast_seconds));
  }
  return OkStatus();
}

CircuitBreaker::CircuitBreaker(const BreakerPolicy& policy) : policy_(policy) {
  Status valid = ValidateBreakerPolicy(policy);
  if (!valid.ok()) {
    std::fprintf(stderr, "CircuitBreaker: %s\n", valid.ToString().c_str());
  }
  SERPENTINE_CHECK(valid.ok());
}

void CircuitBreaker::TransitionTo(BreakerState next, double now) {
  if (next == state_) return;
  transitions_.push_back(BreakerTransition{now, state_, next});
  state_ = next;
  if (next == BreakerState::kOpen) ++opens_;
  obs::SetGauge("drive.breaker.state", static_cast<double>(state_));
  obs::IncrementCounter(std::string("drive.breaker.to_") +
                        BreakerStateName(next));
}

bool CircuitBreaker::Admit(double now, double* retry_after_seconds) {
  if (retry_after_seconds != nullptr) *retry_after_seconds = 0.0;
  if (state_ == BreakerState::kOpen) {
    if (now >= open_until_) {
      // Cooldown over: this call is the first half-open probe.
      probe_successes_ = 0;
      TransitionTo(BreakerState::kHalfOpen, now);
      return true;
    }
    ++fast_fails_;
    if (retry_after_seconds != nullptr) {
      *retry_after_seconds = std::max(open_until_ - now, 0.0);
    }
    obs::IncrementCounter("drive.breaker.fast_fail");
    return false;
  }
  return true;
}

void CircuitBreaker::Observe(bool failure, double now) {
  if (state_ == BreakerState::kHalfOpen) {
    // Probing: the rolling window restarts from scratch once trust is
    // re-established; one probe failure re-opens immediately.
    if (failure) {
      open_until_ = now + policy_.cooldown_seconds;
      TransitionTo(BreakerState::kOpen, now);
    } else if (++probe_successes_ >= policy_.half_open_successes) {
      window_.clear();
      window_failures_ = 0;
      TransitionTo(BreakerState::kClosed, now);
    }
    return;
  }
  if (state_ != BreakerState::kClosed) return;  // open: nothing admitted
  window_.push_back(failure);
  if (failure) ++window_failures_;
  while (static_cast<int>(window_.size()) > policy_.window_ops) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
  if (window_failures_ >= policy_.failure_threshold) {
    window_.clear();
    window_failures_ = 0;
    open_until_ = now + policy_.cooldown_seconds;
    TransitionTo(BreakerState::kOpen, now);
  }
}

void CircuitBreaker::RecordSuccess(double now) { Observe(false, now); }

void CircuitBreaker::RecordFailure(double now) { Observe(true, now); }

HealthDrive::HealthDrive(Drive* inner, const BreakerPolicy& policy)
    : inner_(inner), breaker_(policy) {}

OpResult HealthDrive::FailFast(double retry_after) {
  OpResult r;
  r.status = OpStatus::kCircuitOpen;
  // Charge the refusal plus the remaining cooldown: under the caller-waits
  // contract the virtual clock lands exactly on the cooldown expiry, so
  // the next op is admitted as the half-open probe.
  r.times.recovery_seconds =
      breaker_.policy().fail_fast_seconds + retry_after;
  r.retry_after_seconds = retry_after;
  r.position = inner_->Position();
  clock_seconds_ += r.times.total();
  return r;
}

OpResult HealthDrive::Observe(OpResult result) {
  clock_seconds_ += result.times.total();
  bool failure = !result.ok() ||
                 result.times.total() > breaker_.policy().slow_op_seconds;
  if (failure) {
    breaker_.RecordFailure(clock_seconds_);
  } else {
    breaker_.RecordSuccess(clock_seconds_);
  }
  return result;
}

OpResult HealthDrive::Locate(tape::SegmentId dst) {
  double retry_after = 0.0;
  if (!breaker_.Admit(clock_seconds_, &retry_after)) {
    return FailFast(retry_after);
  }
  return Observe(inner_->Locate(dst));
}

OpResult HealthDrive::ReadSegments(tape::SegmentId from, tape::SegmentId to) {
  double retry_after = 0.0;
  if (!breaker_.Admit(clock_seconds_, &retry_after)) {
    return FailFast(retry_after);
  }
  return Observe(inner_->ReadSegments(from, to));
}

OpResult HealthDrive::ScanSegments(tape::SegmentId from, tape::SegmentId to) {
  double retry_after = 0.0;
  if (!breaker_.Admit(clock_seconds_, &retry_after)) {
    return FailFast(retry_after);
  }
  return Observe(inner_->ScanSegments(from, to));
}

OpResult HealthDrive::DeliverSpan(tape::SegmentId from, tape::SegmentId to) {
  double retry_after = 0.0;
  if (!breaker_.Admit(clock_seconds_, &retry_after)) {
    return FailFast(retry_after);
  }
  return Observe(inner_->DeliverSpan(from, to));
}

OpResult HealthDrive::Rewind() {
  // Never gated: recovery must always be able to rewind a sick transport.
  return Observe(inner_->Rewind());
}

}  // namespace serpentine::drive
