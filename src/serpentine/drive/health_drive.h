// HealthDrive: drive-health tracking and a circuit breaker, as a stackable
// decorator over the fault stream FaultDrive produces.
//
// A production library serving "a planet's worth of cold-storage reads"
// cannot keep feeding work to a drive that has started eating it: every op
// sent to a sick transport burns a full retry schedule before failing, and
// the queue behind the drive grows without bound. The classic remedy is a
// circuit breaker — observe a rolling window of per-op outcomes, trip open
// when the failure density crosses a threshold, refuse work during a
// cooldown, then probe with a few trial ops (half-open) before trusting the
// drive again (closed).
//
// Everything here runs on the simulation's virtual clock and is a pure
// function of the op sequence it observes, so a seeded run reproduces the
// same breaker trajectory bit-for-bit on any thread count.
#ifndef SERPENTINE_DRIVE_HEALTH_DRIVE_H_
#define SERPENTINE_DRIVE_HEALTH_DRIVE_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "serpentine/drive/drive.h"
#include "serpentine/util/status.h"

namespace serpentine::drive {

/// Breaker automaton states.
enum class BreakerState {
  kClosed = 0,    ///< healthy: every op passes through
  kHalfOpen = 1,  ///< probing: ops pass, consecutive successes re-close
  kOpen = 2,      ///< tripped: ops fail fast until the cooldown expires
};

/// Stable lowercase name ("closed", "half-open", "open").
const char* BreakerStateName(BreakerState s);

/// Tuning of one circuit breaker. Defaults trip after 4 failures inside a
/// 16-op window and cool down for two virtual minutes.
struct BreakerPolicy {
  /// Rolling window length, in observed operations.
  int window_ops = 16;
  /// Failures within the window that trip the breaker open.
  int failure_threshold = 4;
  /// An op slower than this counts as a failure even if it succeeded
  /// (a drive taking 10x the modeled time is as sick as one erroring).
  /// Infinity (the default) disables the latency criterion.
  double slow_op_seconds = std::numeric_limits<double>::infinity();
  /// Virtual seconds the breaker stays open before admitting a probe.
  double cooldown_seconds = 120.0;
  /// Consecutive half-open probe successes required to close again.
  int half_open_successes = 2;
  /// Cost charged to an op refused while open (controller round-trip; the
  /// point of the breaker is that this is orders of magnitude cheaper than
  /// a real attempt's retry schedule).
  double fail_fast_seconds = 0.0;
};

/// Rejects NaN/negative/inconsistent policies with a descriptive status.
Status ValidateBreakerPolicy(const BreakerPolicy& policy);

/// One recorded state change, stamped with the breaker's virtual clock.
struct BreakerTransition {
  double at_seconds = 0.0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
};

/// The breaker automaton, independent of any drive so TapeLibrary can run
/// one per mount point. Legal transitions (asserted by the chaos test):
/// closed→open, open→half-open, half-open→closed, half-open→open.
///
/// Not thread-safe; like the drive it guards, a breaker belongs to one
/// serial execution.
class CircuitBreaker {
 public:
  /// `policy` must pass ValidateBreakerPolicy (checked).
  explicit CircuitBreaker(const BreakerPolicy& policy);

  const BreakerPolicy& policy() const { return policy_; }
  BreakerState state() const { return state_; }

  /// Decides whether to admit an operation at virtual time `now`. Open →
  /// refuses and reports the remaining cooldown in `*retry_after_seconds`
  /// (never negative); once `now` reaches the cooldown expiry the breaker
  /// moves to half-open and admits the call as a probe. `now` must be
  /// monotone across calls.
  bool Admit(double now, double* retry_after_seconds);

  /// Reports the outcome of an admitted operation ending at time `now`.
  void RecordSuccess(double now);
  void RecordFailure(double now);

  /// Times the breaker tripped open (closed→open and half-open→open).
  int64_t opens() const { return opens_; }
  /// Operations refused while open.
  int64_t fast_fails() const { return fast_fails_; }
  /// Full transition history, in virtual-time order.
  const std::vector<BreakerTransition>& transitions() const {
    return transitions_;
  }

 private:
  void TransitionTo(BreakerState next, double now);
  void Observe(bool failure, double now);

  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  /// Rolling outcome window, newest at the back; true = failure.
  std::deque<bool> window_;
  int window_failures_ = 0;
  int probe_successes_ = 0;
  double open_until_ = 0.0;
  int64_t opens_ = 0;
  int64_t fast_fails_ = 0;
  std::vector<BreakerTransition> transitions_;
};

/// Decorator that feeds every op outcome of the wrapped drive into a
/// CircuitBreaker and fails ops fast while it is open.
///
/// Clock contract: the decorator accumulates an internal virtual clock from
/// the OpTimes it returns — callers are assumed to "wait" exactly what an
/// op charges, which is how every executor in this codebase treats OpTimes
/// already. A refused op charges fail_fast_seconds *plus the remaining
/// cooldown* as recovery time (and reports the cooldown component in
/// OpResult::retry_after_seconds), so after one kCircuitOpen result the
/// virtual clock has passed the cooldown expiry and the next op is
/// admitted as the half-open probe. This keeps breaker pacing deterministic
/// without executors knowing the decorator exists.
///
/// Gating: Locate, ReadSegments, ScanSegments, and DeliverSpan are gated
/// and observed. Rewind is observed but never refused — recovery paths
/// must always be able to rewind a sick transport.
class HealthDrive : public Drive {
 public:
  /// `inner` must outlive this decorator; `policy` must validate.
  HealthDrive(Drive* inner, const BreakerPolicy& policy);

  OpResult Locate(tape::SegmentId dst) override;
  OpResult ReadSegments(tape::SegmentId from, tape::SegmentId to) override;
  OpResult ScanSegments(tape::SegmentId from, tape::SegmentId to) override;
  OpResult DeliverSpan(tape::SegmentId from, tape::SegmentId to) override;
  OpResult Rewind() override;

  tape::SegmentId Position() const override { return inner_->Position(); }
  void SetPosition(tape::SegmentId position) override {
    inner_->SetPosition(position);
  }
  const tape::LocateModel& model() const override { return inner_->model(); }

  const CircuitBreaker& breaker() const { return breaker_; }
  /// Virtual seconds of op time observed (including fail-fast charges).
  double clock_seconds() const { return clock_seconds_; }

  /// Points the decorator at a different transport while keeping the
  /// breaker's window and state. A tape library swapping cartridges under
  /// one physical drive is the intended use: the breaker guards the drive,
  /// not the cartridge. `inner` must outlive this decorator.
  void set_inner(Drive* inner) { inner_ = inner; }

 private:
  /// Refusal result for an op issued while the breaker is open.
  OpResult FailFast(double retry_after);
  /// Clocks an admitted op's result and records its outcome.
  OpResult Observe(OpResult result);

  Drive* inner_;
  CircuitBreaker breaker_;
  double clock_seconds_ = 0.0;
};

}  // namespace serpentine::drive

#endif  // SERPENTINE_DRIVE_HEALTH_DRIVE_H_
