// TracingDrive: a transparent decorator that emits one virtual-clock trace
// span per drive operation — with per-phase child spans
// (locate/read/rewind/recovery) and status/position args — into the
// ambient obs::TraceRecorder. Results are returned unmodified; with no
// recorder installed the decorator costs one relaxed atomic load and a
// double add per op, and execution is bit-identical either way (pinned by
// tests/obs_test.cc).
//
// The decorator keeps its own virtual clock: the sum of every op's total
// seconds since construction (or the last set_clock_seconds). Stack it
// outermost — Tracing(Metered(Fault(Model))) — so its clock covers
// everything execution experienced, recovery time included, and spans line
// up with the executor's completion stamps.
#ifndef SERPENTINE_DRIVE_TRACING_DRIVE_H_
#define SERPENTINE_DRIVE_TRACING_DRIVE_H_

#include "serpentine/drive/drive.h"

namespace serpentine::drive {

/// Pass-through decorator tracing every operation of the wrapped drive.
class TracingDrive : public Drive {
 public:
  /// `inner` must outlive this decorator. Spans go to the ambient
  /// obs::TraceRecorder::active() at each op, so a recorder installed
  /// after construction is picked up automatically.
  explicit TracingDrive(Drive* inner) : inner_(inner) {}

  OpResult Locate(tape::SegmentId dst) override;
  OpResult ReadSegments(tape::SegmentId from, tape::SegmentId to) override;
  OpResult ScanSegments(tape::SegmentId from, tape::SegmentId to) override;
  OpResult DeliverSpan(tape::SegmentId from, tape::SegmentId to) override;
  OpResult Rewind() override;

  tape::SegmentId Position() const override { return inner_->Position(); }
  void SetPosition(tape::SegmentId position) override {
    inner_->SetPosition(position);
  }
  const tape::LocateModel& model() const override { return inner_->model(); }

  /// Virtual seconds of drive activity observed since construction (or the
  /// last set_clock_seconds).
  double clock_seconds() const { return clock_seconds_; }
  /// Aligns the span clock with an outer virtual timeline (e.g. a queue
  /// simulation's arrival clock) so drive spans land at absolute times.
  void set_clock_seconds(double seconds) { clock_seconds_ = seconds; }

 private:
  /// Advances the clock and, when a recorder is active, emits the op span
  /// plus per-phase child spans.
  void Emit(const char* op, const OpResult& r);

  Drive* inner_;
  double clock_seconds_ = 0.0;
};

}  // namespace serpentine::drive

#endif  // SERPENTINE_DRIVE_TRACING_DRIVE_H_
