// Deterministic fault injection for the drive/library layers.
//
// The paper's schedules are static plans against a believed locate-time
// model, and PhysicalDrive perturbs only the *timing* of a locate. Real
// DLT-class hardware also fails structurally: reads hit soft ECC errors and
// are retried, positioning overshoots near track ends and must be redone
// (Hillyer & Silberschatz §3/§7 blame exactly this region for their model
// error), drives soft-reset and rewind to BOT, media develops sticky bad
// segments, and library robots drop or mis-grip cartridges. TALICS³
// (Arslan et al.) makes the same point for tape clouds: a simulator is only
// production-useful once these are first-class events.
//
// FaultInjector turns a FaultProfile (per-operation Bernoulli rates plus
// recovery timings) into a deterministic event stream: one seeded rand48
// draw per drive operation, in operation order. The same seed therefore
// yields a bit-identical fault sequence no matter which thread runs the
// (serial) execution — the parallel harnesses give each replication its own
// injector stream derived via DeriveRand48State, which is what keeps
// 1-thread and N-thread experiment statistics bit-identical under faults.
#ifndef SERPENTINE_DRIVE_FAULT_INJECTOR_H_
#define SERPENTINE_DRIVE_FAULT_INJECTOR_H_

#include <cstdint>
#include <set>
#include <string>

#include "serpentine/tape/geometry.h"
#include "serpentine/tape/types.h"
#include "serpentine/util/lrand48.h"
#include "serpentine/util/retry.h"
#include "serpentine/util/statusor.h"

namespace serpentine::drive {

/// The fault classes the injector can produce.
enum class FaultType {
  kNone = 0,
  /// Soft read error on a segment span: the pass delivered no data; a
  /// re-read usually succeeds (retryable).
  kTransientReadError,
  /// Positioning completed but settled on the wrong segment (the paper's
  /// under-modeled track-end region); the head must re-locate (retryable).
  kLocateOvershoot,
  /// Drive firmware soft reset: the transport rewinds to BOT and the whole
  /// remaining plan starts from the wrong head position (retryable, but the
  /// plan is stale — reschedule).
  kDriveReset,
  /// Media defect: the segment is unreadable now and forever (permanent;
  /// sticky per segment).
  kPermanentMediaError,
  /// Robot/load failure while mounting a cartridge (retryable).
  kRobotFault,
};

/// Stable lowercase name ("transient-read", "locate-overshoot", ...).
const char* FaultTypeName(FaultType t);

/// Whether a fault class is worth retrying.
ErrorClass ClassifyFault(FaultType t);

/// Rates and recovery timings of one fault process. All rates are
/// per-operation Bernoulli probabilities; zero everywhere (the default)
/// injects nothing, so fault-aware code paths reproduce the paper's
/// fault-free figures exactly.
struct FaultProfile {
  /// P[soft read error] per serviced request span.
  double transient_read_rate = 0.0;
  /// P[positioning overshoot] per locate.
  double locate_overshoot_rate = 0.0;
  /// P[drive soft reset] per locate.
  double drive_reset_rate = 0.0;
  /// P[segment goes permanently bad] per serviced request span; once drawn,
  /// the segment stays bad for the injector's lifetime.
  double permanent_error_rate = 0.0;
  /// P[robot/load failure] per mount attempt.
  double mount_failure_rate = 0.0;

  /// Wasted settle time on an overshoot before the head can re-locate.
  double overshoot_settle_seconds = 4.0;
  /// Soft reset: controller restart before the forced rewind begins.
  double reset_seconds = 25.0;
  /// Fixed per-attempt overhead of a failed read pass (ECC retry logic,
  /// internal repositioning), on top of the wasted transport time.
  double reread_overhead_seconds = 2.0;
  /// Robot re-pick after a failed exchange.
  double mount_retry_seconds = 20.0;

  /// Seed of the injector's rand48 fault stream.
  int32_t seed = 4099;

  /// True when any rate is nonzero (i.e. the profile can inject at all).
  bool any() const;

  /// Returns a copy with every rate scaled by `factor` (clamped to [0, 1]);
  /// timings and seed are unchanged. The fault-rate sweep knob.
  FaultProfile Scaled(double factor) const;

  /// Named profiles for CLI/bench use. None() is all-zero; Light() is a
  /// drive having a bad day; Heavy() is a drive that should be retired.
  static FaultProfile None();
  static FaultProfile Light();
  static FaultProfile Heavy();
};

/// Rejects garbage profiles with a descriptive status: every rate must be a
/// finite probability in [0, 1], every recovery timing finite and >= 0.
serpentine::Status ValidateFaultProfile(const FaultProfile& profile);

/// Parses a profile from a file of `key=value` lines (keys are the
/// FaultProfile field names; '#' starts a comment), or from the names
/// "none", "light", "heavy". Unknown keys fail with InvalidArgument; the
/// parsed profile is validated with ValidateFaultProfile before returning.
serpentine::StatusOr<FaultProfile> LoadFaultProfile(const std::string& spec);

/// A seeded, deterministic fault process over drive operations.
///
/// Each Draw* call consumes exactly one rand48 draw (OvershootTarget one
/// more), so the event stream is a pure function of (profile.seed, sequence
/// of operations). Not thread-safe: like the drive it shadows, an injector
/// belongs to one serial execution; concurrent harnesses derive one
/// injector per replication.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultProfile& profile);

  const FaultProfile& profile() const { return profile_; }

  /// Restarts the fault stream (srand48-style), keeping sticky bad
  /// segments. ReseedState seeds from a full 48-bit state (e.g. a
  /// DeriveRand48State product) for decorrelated per-replication streams.
  void Reseed(int32_t seed);
  void ReseedState(uint64_t state);

  /// Draws the fault, if any, for the next locate operation: kNone,
  /// kLocateOvershoot, or kDriveReset.
  FaultType DrawLocateFault();

  /// Draws the fault for servicing a read of the span starting at
  /// `segment`: kNone, kTransientReadError, or kPermanentMediaError.
  /// Permanent errors are sticky — once a segment has drawn one, every
  /// later read of it fails permanently without consuming a draw.
  FaultType DrawReadFault(tape::SegmentId segment);

  /// Draws whether the next mount attempt fails (robot/load failure).
  bool DrawMountFault();

  /// Where an overshot locate actually settles: a segment within roughly
  /// one reading section of `dst`, never `dst` itself.
  tape::SegmentId OvershootTarget(const tape::TapeGeometry& geometry,
                                  tape::SegmentId dst);

  /// True if `segment` has drawn a permanent media error.
  bool IsBadSegment(tape::SegmentId segment) const {
    return bad_segments_.count(segment) > 0;
  }
  const std::set<tape::SegmentId>& bad_segments() const {
    return bad_segments_;
  }

  /// Lifetime counters (injected faults by class).
  int64_t faults_injected() const { return faults_injected_; }

 private:
  FaultProfile profile_;
  serpentine::Lrand48 rng_;
  std::set<tape::SegmentId> bad_segments_;
  int64_t faults_injected_ = 0;
};

}  // namespace serpentine::drive

#endif  // SERPENTINE_DRIVE_FAULT_INJECTOR_H_
