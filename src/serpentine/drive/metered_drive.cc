#include "serpentine/drive/metered_drive.h"

#include <cmath>
#include <cstdio>

namespace serpentine::drive {

void LatencyHistogram::Add(double seconds) {
  ++count_;
  total_seconds_ += seconds;
  int b = 0;
  if (seconds > 0.0) {
    b = kZeroBucket + static_cast<int>(std::floor(std::log2(seconds)));
    if (b < 0) b = 0;
    if (b >= kBuckets) b = kBuckets - 1;
  }
  ++counts_[b];
}

double LatencyHistogram::BucketFloorSeconds(int b) {
  if (b <= 0) return 0.0;
  return std::pow(2.0, b - kZeroBucket);
}

std::string DriveMetrics::ToJson(const std::string& label) const {
  char buf[512];
  std::string out = "{";
  std::snprintf(
      buf, sizeof(buf),
      "\"label\":\"%s\",\"locates\":%lld,\"reads\":%lld,\"scans\":%lld,"
      "\"deliveries\":%lld,\"rewinds\":%lld,\"segments_read\":%lld,"
      "\"locate_seconds\":%.6f,\"read_seconds\":%.6f,"
      "\"rewind_seconds\":%.6f,\"recovery_seconds\":%.6f,"
      "\"transient_read_errors\":%lld,\"locate_overshoots\":%lld,"
      "\"drive_resets\":%lld,\"permanent_errors\":%lld",
      label.c_str(), static_cast<long long>(locates),
      static_cast<long long>(reads), static_cast<long long>(scans),
      static_cast<long long>(deliveries), static_cast<long long>(rewinds),
      static_cast<long long>(segments_read), locate_seconds, read_seconds,
      rewind_seconds, recovery_seconds,
      static_cast<long long>(transient_read_errors),
      static_cast<long long>(locate_overshoots),
      static_cast<long long>(drive_resets),
      static_cast<long long>(permanent_errors));
  out += buf;
  out += ",\"locate_latency\":[";
  bool first = true;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    if (locate_latency.bucket(b) == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s[%.6g,%lld]", first ? "" : ",",
                  LatencyHistogram::BucketFloorSeconds(b),
                  static_cast<long long>(locate_latency.bucket(b)));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

void MeteredDrive::Observe(const OpResult& r) {
  metrics_.recovery_seconds += r.times.recovery_seconds;
  metrics_.transient_read_errors += r.transient_read_errors;
  switch (r.status) {
    case OpStatus::kOk:
      break;
    case OpStatus::kTransientReadError:
      ++metrics_.transient_read_errors;
      break;
    case OpStatus::kLocateOvershoot:
      ++metrics_.locate_overshoots;
      break;
    case OpStatus::kDriveReset:
      ++metrics_.drive_resets;
      break;
    case OpStatus::kPermanentMediaError:
      ++metrics_.permanent_errors;
      break;
  }
}

OpResult MeteredDrive::Locate(tape::SegmentId dst) {
  OpResult r = inner_->Locate(dst);
  ++metrics_.locates;
  metrics_.locate_seconds += r.times.locate_seconds;
  metrics_.locate_latency.Add(r.times.total());
  Observe(r);
  return r;
}

OpResult MeteredDrive::ReadSegments(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->ReadSegments(from, to);
  ++metrics_.reads;
  metrics_.read_seconds += r.times.read_seconds;
  metrics_.segments_read += r.segments_read;
  metrics_.read_latency.Add(r.times.total());
  Observe(r);
  return r;
}

OpResult MeteredDrive::ScanSegments(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->ScanSegments(from, to);
  ++metrics_.scans;
  metrics_.read_seconds += r.times.read_seconds;
  metrics_.segments_read += r.segments_read;
  metrics_.read_latency.Add(r.times.total());
  Observe(r);
  return r;
}

OpResult MeteredDrive::DeliverSpan(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->DeliverSpan(from, to);
  ++metrics_.deliveries;
  Observe(r);
  return r;
}

OpResult MeteredDrive::Rewind() {
  OpResult r = inner_->Rewind();
  ++metrics_.rewinds;
  metrics_.rewind_seconds += r.times.rewind_seconds;
  Observe(r);
  return r;
}

}  // namespace serpentine::drive
