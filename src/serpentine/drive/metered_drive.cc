#include "serpentine/drive/metered_drive.h"

#include <cstdio>

#include "serpentine/obs/metrics.h"

namespace serpentine::drive {

std::string DriveMetrics::ToJson(const std::string& label) const {
  char buf[512];
  std::string out = "{";
  std::snprintf(
      buf, sizeof(buf),
      "\"label\":\"%s\",\"locates\":%lld,\"reads\":%lld,\"scans\":%lld,"
      "\"deliveries\":%lld,\"rewinds\":%lld,\"segments_read\":%lld,"
      "\"locate_seconds\":%.6f,\"read_seconds\":%.6f,"
      "\"rewind_seconds\":%.6f,\"recovery_seconds\":%.6f,"
      "\"transient_read_errors\":%lld,\"locate_overshoots\":%lld,"
      "\"drive_resets\":%lld,\"permanent_errors\":%lld",
      label.c_str(), static_cast<long long>(locates),
      static_cast<long long>(reads), static_cast<long long>(scans),
      static_cast<long long>(deliveries), static_cast<long long>(rewinds),
      static_cast<long long>(segments_read), locate_seconds, read_seconds,
      rewind_seconds, recovery_seconds,
      static_cast<long long>(transient_read_errors),
      static_cast<long long>(locate_overshoots),
      static_cast<long long>(drive_resets),
      static_cast<long long>(permanent_errors));
  out += buf;
  out += ",\"locate_latency\":[";
  bool first = true;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    if (locate_latency.bucket(b) == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s[%.6g,%lld]", first ? "" : ",",
                  LatencyHistogram::BucketFloorSeconds(b),
                  static_cast<long long>(locate_latency.bucket(b)));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

void DriveMetrics::PublishTo(obs::MetricsRegistry& registry,
                             const std::string& prefix) const {
  registry.counter(prefix + ".locates").Increment(locates);
  registry.counter(prefix + ".reads").Increment(reads);
  registry.counter(prefix + ".scans").Increment(scans);
  registry.counter(prefix + ".deliveries").Increment(deliveries);
  registry.counter(prefix + ".rewinds").Increment(rewinds);
  registry.counter(prefix + ".segments_read").Increment(segments_read);
  registry.counter(prefix + ".transient_read_errors")
      .Increment(transient_read_errors);
  registry.counter(prefix + ".locate_overshoots").Increment(locate_overshoots);
  registry.counter(prefix + ".drive_resets").Increment(drive_resets);
  registry.counter(prefix + ".permanent_errors").Increment(permanent_errors);
  registry.gauge(prefix + ".locate_seconds").Set(locate_seconds);
  registry.gauge(prefix + ".read_seconds").Set(read_seconds);
  registry.gauge(prefix + ".rewind_seconds").Set(rewind_seconds);
  registry.gauge(prefix + ".recovery_seconds").Set(recovery_seconds);
  registry.histogram(prefix + ".locate_latency").Merge(locate_latency);
  registry.histogram(prefix + ".read_latency").Merge(read_latency);
}

void MeteredDrive::Observe(const OpResult& r) {
  metrics_.recovery_seconds += r.times.recovery_seconds;
  metrics_.transient_read_errors += r.transient_read_errors;
  switch (r.status) {
    case OpStatus::kOk:
      break;
    case OpStatus::kTransientReadError:
      ++metrics_.transient_read_errors;
      break;
    case OpStatus::kLocateOvershoot:
      ++metrics_.locate_overshoots;
      break;
    case OpStatus::kDriveReset:
      ++metrics_.drive_resets;
      break;
    case OpStatus::kPermanentMediaError:
      ++metrics_.permanent_errors;
      break;
  }
}

OpResult MeteredDrive::Locate(tape::SegmentId dst) {
  OpResult r = inner_->Locate(dst);
  ++metrics_.locates;
  metrics_.locate_seconds += r.times.locate_seconds;
  metrics_.locate_latency.Add(r.times.total());
  Observe(r);
  return r;
}

OpResult MeteredDrive::ReadSegments(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->ReadSegments(from, to);
  ++metrics_.reads;
  metrics_.read_seconds += r.times.read_seconds;
  metrics_.segments_read += r.segments_read;
  metrics_.read_latency.Add(r.times.total());
  Observe(r);
  return r;
}

OpResult MeteredDrive::ScanSegments(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->ScanSegments(from, to);
  ++metrics_.scans;
  metrics_.read_seconds += r.times.read_seconds;
  metrics_.segments_read += r.segments_read;
  metrics_.read_latency.Add(r.times.total());
  Observe(r);
  return r;
}

OpResult MeteredDrive::DeliverSpan(tape::SegmentId from, tape::SegmentId to) {
  OpResult r = inner_->DeliverSpan(from, to);
  ++metrics_.deliveries;
  Observe(r);
  return r;
}

OpResult MeteredDrive::Rewind() {
  OpResult r = inner_->Rewind();
  ++metrics_.rewinds;
  metrics_.rewind_seconds += r.times.rewind_seconds;
  Observe(r);
  return r;
}

}  // namespace serpentine::drive
