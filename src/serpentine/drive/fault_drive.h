// FaultDrive: re-hosts the seeded FaultInjector as a drive decorator.
// Ops draw from the injector in operation order (exactly one Bernoulli
// draw per locate / service read / span delivery, so the event stream is
// the same pure function of (seed, op sequence) the recovering executor
// consumed when it owned the injector); faults surface as OpStatus plus a
// recovery-time charge, and the decorator moves the head to wherever the
// faulted transport actually settled.
#ifndef SERPENTINE_DRIVE_FAULT_DRIVE_H_
#define SERPENTINE_DRIVE_FAULT_DRIVE_H_

#include "serpentine/drive/drive.h"
#include "serpentine/drive/fault_injector.h"

namespace serpentine::drive {

/// Decorator injecting structural faults into another drive.
///
/// Per-op semantics (timings from the injector's FaultProfile):
///   * Locate — may overshoot (wasted full locate + settle, head lands
///     near the target) or soft-reset (reset penalty + forced rewind,
///     head at BOT). One injector draw per call; retry loops belong to
///     the executor.
///   * ReadSegments — may fail transiently (wasted pass + re-read
///     overhead, head unmoved) or permanently (sticky per segment).
///   * ScanSegments — never faults; a streaming pass's errors surface per
///     delivered span.
///   * DeliverSpan — draws the span's fault, absorbing one on-the-fly
///     re-read on a transient error; only a permanent media error fails.
class FaultDrive : public Drive {
 public:
  /// `inner` must outlive this decorator. `injector` is borrowed and may
  /// be null, which makes the decorator a transparent pass-through (the
  /// zero-fault stack executes bit-identically to the bare inner drive).
  FaultDrive(Drive* inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  OpResult Locate(tape::SegmentId dst) override;
  OpResult ReadSegments(tape::SegmentId from, tape::SegmentId to) override;
  OpResult ScanSegments(tape::SegmentId from, tape::SegmentId to) override {
    return inner_->ScanSegments(from, to);
  }
  OpResult DeliverSpan(tape::SegmentId from, tape::SegmentId to) override;
  OpResult Rewind() override { return inner_->Rewind(); }

  tape::SegmentId Position() const override { return inner_->Position(); }
  void SetPosition(tape::SegmentId position) override {
    inner_->SetPosition(position);
  }
  const tape::LocateModel& model() const override { return inner_->model(); }

  FaultInjector* injector() const { return injector_; }

 private:
  Drive* inner_;
  FaultInjector* injector_;
};

}  // namespace serpentine::drive

#endif  // SERPENTINE_DRIVE_FAULT_DRIVE_H_
