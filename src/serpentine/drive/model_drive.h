// ModelDrive: the base of every drive stack — a stateful head over any
// tape::LocateModel. Wraps the believed Dlt4000LocateModel for estimates,
// a CachedLocateModel for zero-recomputation planning sessions, a
// PerturbedLocateModel for the Fig 10 sensitivity runs, or a
// sim::PhysicalDrive for "measured" execution.
#ifndef SERPENTINE_DRIVE_MODEL_DRIVE_H_
#define SERPENTINE_DRIVE_MODEL_DRIVE_H_

#include "serpentine/drive/drive.h"

namespace serpentine::drive {

/// A drive whose operations take exactly the time the wrapped model
/// predicts. Every op reports kOk; position bookkeeping follows
/// sched::OutPosition's clamp rule.
class ModelDrive : public Drive {
 public:
  /// `model` must outlive the drive. The head starts at `position`.
  explicit ModelDrive(const tape::LocateModel& model,
                      tape::SegmentId position = 0)
      : model_(model), position_(position) {}

  OpResult Locate(tape::SegmentId dst) override;
  OpResult ReadSegments(tape::SegmentId from, tape::SegmentId to) override;
  OpResult Rewind() override;

  tape::SegmentId Position() const override { return position_; }
  void SetPosition(tape::SegmentId position) override {
    position_ = position;
  }
  const tape::LocateModel& model() const override { return model_; }

 private:
  const tape::LocateModel& model_;
  tape::SegmentId position_;
};

}  // namespace serpentine::drive

#endif  // SERPENTINE_DRIVE_MODEL_DRIVE_H_
