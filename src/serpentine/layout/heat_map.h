// Workload heat accounting at placement granularity. The layout loop's
// input side: every served request lands in a per-group access counter,
// consecutive requests accumulate co-access affinity, and a WearTracker's
// per-bin pass counts can be merged in as the media-wear baseline. The
// PlacementOptimizer consumes the resulting HeatMap to propose a new
// segment→physical mapping (docs/placement.md).
//
// Granularity: segments are aggregated into fixed-size *groups* (default
// 704 segments ≈ one nominal forward-track section) — the unit of
// relocation. Placement is a permutation of groups, so the HeatMap never
// needs per-segment state on a 622k-segment tape.
#ifndef SERPENTINE_LAYOUT_HEAT_MAP_H_
#define SERPENTINE_LAYOUT_HEAT_MAP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "serpentine/sched/request.h"
#include "serpentine/sim/serving_core.h"
#include "serpentine/sim/wear.h"
#include "serpentine/tape/types.h"

namespace serpentine::layout {

/// One co-access affinity edge: groups `a` and `b` (a < b) were touched
/// by consecutive requests `count` times.
struct Affinity {
  int64_t a = 0;
  int64_t b = 0;
  int64_t count = 0;
};

/// Per-group access counts + co-access affinity + optional wear baseline.
///
/// Feed it from any of the observation surfaces:
///   * batch traffic: RecordBatch (consecutive-request affinity included);
///   * online serving: hand CompletionObserver() to
///     sim::ServingCore::set_completion_callback — completions accumulate
///     heat without perturbing the serving trajectory;
///   * media history: MergeWear with the WearTracker that watched past
///     schedules.
class HeatMap {
 public:
  explicit HeatMap(tape::SegmentId total_segments,
                   int64_t group_segments = 704);

  // ---- group geometry ----
  tape::SegmentId total_segments() const { return total_; }
  int64_t group_segments() const { return group_segments_; }
  int64_t num_groups() const { return static_cast<int64_t>(heat_.size()); }
  int64_t group_of(tape::SegmentId segment) const {
    return segment / group_segments_;
  }
  tape::SegmentId group_start(int64_t group) const {
    return group * group_segments_;
  }
  /// Group sizes are uniform except the final group, which holds the
  /// remainder when group_segments does not divide total_segments.
  int64_t group_size(int64_t group) const;

  // ---- recording ----
  /// Adds `weight` accesses to every group the request span touches.
  void RecordRequest(const sched::Request& request, int64_t weight = 1);
  /// Records every request of a batch, plus one affinity count between the
  /// groups of each consecutive request pair (arrival order) that lands in
  /// two different groups.
  void RecordBatch(const std::vector<sched::Request>& batch);
  /// Completion-observer hook for sim::ServingCore: counts served (ok)
  /// completions, ignores failures. Never perturbs the serving trajectory
  /// — it only increments counters owned by this HeatMap.
  void ObserveCompletion(const sim::ServingRequest& request,
                         double completion_time, bool ok);
  /// The above as a std::function ready for set_completion_callback. The
  /// HeatMap must outlive the ServingCore it is attached to.
  std::function<void(const sim::ServingRequest&, double, bool)>
  CompletionObserver();
  /// Merges a WearTracker's per-bin pass counts as the wear baseline the
  /// optimizer's leveling cap works against. Repeated merges accumulate;
  /// all merges must agree on the tracker's bin count.
  void MergeWear(const sim::WearTracker& wear);

  // ---- reading ----
  int64_t group_heat(int64_t group) const { return heat_[group]; }
  int64_t total_heat() const { return total_heat_; }
  int64_t observed_completions() const { return observed_completions_; }
  /// Batches seen by RecordBatch. The optimizer divides group heat by
  /// this to estimate per-batch visit rates (a group served five times in
  /// one batch costs one key-point backup, not five — the scheduler reads
  /// through a visited section in arrival-ascending order).
  int64_t batches_recorded() const { return batches_recorded_; }
  /// The heaviest affinity edges, sorted by count descending (ties: lower
  /// (a, b) first, so the order is deterministic).
  std::vector<Affinity> TopAffinities(size_t limit) const;
  /// Wear baseline bins (empty until MergeWear is called).
  const std::vector<int64_t>& wear_baseline() const { return wear_baseline_; }

 private:
  tape::SegmentId total_;
  int64_t group_segments_;
  std::vector<int64_t> heat_;
  int64_t total_heat_ = 0;
  int64_t observed_completions_ = 0;
  int64_t batches_recorded_ = 0;
  /// Affinity keyed by a * num_groups + b with a < b.
  std::unordered_map<int64_t, int64_t> affinity_;
  std::vector<int64_t> wear_baseline_;
};

}  // namespace serpentine::layout

#endif  // SERPENTINE_LAYOUT_HEAT_MAP_H_
