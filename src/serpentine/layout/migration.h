// Migration planning: turning the delta between the current (identity)
// layout and a proposed Placement into reorganization batches that the
// existing schedulers order and the drive stack executes/costs.
//
// A migration moves whole groups. Each batch reads a handful of groups
// from their current homes — ordered by a sched::Registry algorithm, so
// the read leg benefits from the same locate-aware scheduling as
// foreground traffic — then streams them out to their destination slots
// (contiguous destination runs cost one locate plus a sequential
// transfer, the same rate as a read; serpentine drives write and read at
// the transport speed). RunInterleavedMigration additionally shares the
// drive with foreground Poisson traffic under a three-rung ladder
// (full/half/quarter slices by expected arrivals per slice), the layout
// loop's analog of the online server's degradation ladder
// (docs/placement.md).
#ifndef SERPENTINE_LAYOUT_MIGRATION_H_
#define SERPENTINE_LAYOUT_MIGRATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serpentine/drive/drive.h"
#include "serpentine/layout/placement.h"
#include "serpentine/sched/registry.h"
#include "serpentine/tape/locate_model.h"
#include "serpentine/util/statusor.h"

namespace serpentine::layout {

struct MigrationOptions {
  /// Groups moved per reorganization batch.
  int64_t batch_groups = 16;
  /// Registry entry ordering each batch's read leg.
  std::string algorithm = "loss";
};

/// One reorganization batch: the groups it moves, the scheduled read leg
/// over their current homes, and the estimated write cost to their
/// destination slots.
struct MigrationBatch {
  std::vector<int64_t> groups;
  sched::Schedule reads;
  int64_t segments = 0;
  double read_seconds = 0.0;
  double write_seconds = 0.0;
};

struct MigrationPlan {
  std::vector<MigrationBatch> batches;
  int64_t moved_groups = 0;
  int64_t segments = 0;
  double estimated_seconds = 0.0;
};

/// Plans the migration from the identity layout to `target`. Moved groups
/// are batched in destination-slot order (so write legs stay contiguous),
/// each batch's read leg is scheduled by `options.algorithm`, and the head
/// carries from each batch's write leg into the next batch's reads. An
/// identity target yields an empty plan.
StatusOr<MigrationPlan> PlanMigration(const tape::Dlt4000LocateModel& model,
                                      const Placement& target,
                                      const sched::Registry& registry,
                                      const MigrationOptions& options = {});

/// Outcome of running a plan on a drive stack.
struct MigrationExecution {
  double total_seconds = 0.0;
  double read_seconds = 0.0;
  double write_seconds = 0.0;
  int64_t segments = 0;
  int64_t batches = 0;
};

/// Executes `plan` on `drive`: each batch's read schedule through the
/// standard executor, then one locate + streaming transfer per contiguous
/// destination run. Assumes a fault-free stack (like sim::ExecuteSchedule).
MigrationExecution ExecuteMigration(drive::Drive& drive,
                                    const MigrationPlan& plan,
                                    const Placement& target);

struct InterleavedOptions {
  /// Foreground Poisson arrival rate and request count.
  double arrival_rate_per_hour = 60.0;
  int64_t foreground_requests = 200;
  /// Registry entry scheduling foreground dispatch batches.
  std::string algorithm = "loss";
  int32_t seed = 1;
  /// Ladder thresholds: expected foreground arrivals during a full slice
  /// at or below `full_below` → run the full slice; at or below
  /// `half_below` → half; above → quarter (never below one group, so the
  /// migration always makes progress).
  double full_below = 2.0;
  double half_below = 8.0;
};

struct InterleavedResult {
  /// Foreground service quality (migration delay included).
  int64_t foreground_completed = 0;
  double mean_response_seconds = 0.0;
  double p99_response_seconds = 0.0;
  double max_response_seconds = 0.0;
  /// Where the time went.
  double makespan_seconds = 0.0;
  double migration_seconds = 0.0;
  double foreground_seconds = 0.0;
  /// Ladder usage.
  int64_t full_slices = 0;
  int64_t half_slices = 0;
  int64_t quarter_slices = 0;
  bool migration_complete = false;
};

/// Shares one model drive between `plan` and foreground Poisson traffic:
/// foreground requests dispatch whenever any are queued; migration slices
/// run only on an empty queue, sized by the ladder above. Foreground
/// requests address the post-migration (physical) space uniformly.
/// Deterministic for a given (model, plan, options).
StatusOr<InterleavedResult> RunInterleavedMigration(
    const tape::Dlt4000LocateModel& model, const MigrationPlan& plan,
    const Placement& target, const sched::Registry& registry,
    const InterleavedOptions& options = {});

}  // namespace serpentine::layout

#endif  // SERPENTINE_LAYOUT_MIGRATION_H_
