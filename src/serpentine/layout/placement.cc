#include "serpentine/layout/placement.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "serpentine/sim/executor.h"
#include "serpentine/sim/wear.h"
#include "serpentine/util/check.h"
#include "serpentine/util/lrand48.h"
#include "serpentine/util/status.h"

namespace serpentine::layout {

// ---------------------------------------------------------------- Placement

Placement Placement::Identity(tape::SegmentId total_segments,
                              int64_t group_segments) {
  SERPENTINE_CHECK_GT(total_segments, 0);
  SERPENTINE_CHECK_GT(group_segments, 0);
  Placement p;
  p.total_ = total_segments;
  p.group_segments_ = group_segments;
  p.order_.resize((total_segments + group_segments - 1) / group_segments);
  std::iota(p.order_.begin(), p.order_.end(), 0);
  p.BuildIndex();
  return p;
}

StatusOr<Placement> Placement::FromOrder(tape::SegmentId total_segments,
                                         int64_t group_segments,
                                         std::vector<int64_t> order) {
  Placement p = Identity(total_segments, group_segments);
  if (static_cast<int64_t>(order.size()) != p.num_groups()) {
    return InvalidArgumentError(
        "Placement::FromOrder: order has " + std::to_string(order.size()) +
        " slots, tape has " + std::to_string(p.num_groups()) + " groups");
  }
  std::vector<char> seen(order.size(), 0);
  for (int64_t g : order) {
    if (g < 0 || g >= p.num_groups() || seen[g]) {
      return InvalidArgumentError(
          "Placement::FromOrder: order is not a permutation of [0, " +
          std::to_string(p.num_groups()) + ")");
    }
    seen[g] = 1;
  }
  p.order_ = std::move(order);
  p.BuildIndex();
  return p;
}

void Placement::BuildIndex() {
  const int64_t g_count = num_groups();
  slot_of_.assign(g_count, 0);
  slot_start_.assign(g_count, 0);
  tape::SegmentId at = 0;
  for (int64_t slot = 0; slot < g_count; ++slot) {
    int64_t group = order_[slot];
    slot_of_[group] = slot;
    slot_start_[slot] = at;
    at += std::min<int64_t>(group_segments_,
                            total_ - group * group_segments_);
  }
  SERPENTINE_CHECK_EQ(at, total_);
}

tape::SegmentId Placement::ToPhysical(tape::SegmentId logical) const {
  SERPENTINE_CHECK_GE(logical, 0);
  SERPENTINE_CHECK_LT(logical, total_);
  int64_t group = logical / group_segments_;
  return slot_start_[slot_of_[group]] + (logical - group * group_segments_);
}

tape::SegmentId Placement::ToLogical(tape::SegmentId physical) const {
  SERPENTINE_CHECK_GE(physical, 0);
  SERPENTINE_CHECK_LT(physical, total_);
  // slot_start_ is strictly increasing; find the slot containing physical.
  auto it = std::upper_bound(slot_start_.begin(), slot_start_.end(), physical);
  int64_t slot = (it - slot_start_.begin()) - 1;
  int64_t group = order_[slot];
  return group * group_segments_ + (physical - slot_start_[slot]);
}

std::vector<sched::Request> Placement::RemapBatch(
    const std::vector<sched::Request>& batch) const {
  std::vector<sched::Request> physical;
  physical.reserve(batch.size());
  for (const sched::Request& r : batch) {
    tape::SegmentId at = r.segment;
    int64_t remaining = r.count;
    while (remaining > 0) {
      int64_t group = at / group_segments_;
      tape::SegmentId group_end = std::min<tape::SegmentId>(
          (group + 1) * group_segments_, total_);
      int64_t take = std::min<int64_t>(remaining, group_end - at);
      physical.push_back(sched::Request{ToPhysical(at), take});
      at += take;
      remaining -= take;
    }
  }
  return physical;
}

bool Placement::is_identity() const {
  for (int64_t slot = 0; slot < num_groups(); ++slot) {
    if (order_[slot] != slot) return false;
  }
  return true;
}

int64_t Placement::moved_groups() const {
  int64_t moved = 0;
  for (int64_t slot = 0; slot < num_groups(); ++slot) {
    if (order_[slot] != slot) ++moved;
  }
  return moved;
}

// ------------------------------------------------------- PlacementOptimizer

PlacementOptimizer::PlacementOptimizer(const tape::Dlt4000LocateModel& model,
                                       OptimizerOptions options)
    : model_(model), options_(options) {
  SERPENTINE_CHECK_GT(options_.probe_sources, 0);
  SERPENTINE_CHECK_GT(options_.max_chain_groups, 0);
  SERPENTINE_CHECK_GT(options_.wear_bins, 0);
  Lrand48 rng(options_.probe_seed);
  probes_.reserve(options_.probe_sources);
  const tape::SegmentId total = model_.geometry().total_segments();
  // Probe sources model where the head actually is when a locate starts.
  // Chained tours are sorted by segment, so every batch parks the head
  // near the top of segment space; the steady-state share of the probes
  // samples that turnaround region, the rest are uniform (cold starts and
  // mid-tour excursions).
  const int steady = static_cast<int>(
      options_.steady_state_fraction * options_.probe_sources);
  const tape::SegmentId tail = std::max<tape::SegmentId>(1, total / 16);
  for (int i = 0; i < options_.probe_sources; ++i) {
    if (i < steady) {
      probes_.push_back(total - 1 - rng.NextBounded(tail));
    } else {
      probes_.push_back(rng.NextBounded(total));
    }
  }
}

double PlacementOptimizer::SlotGoodness(int64_t slot,
                                        int64_t group_segments) const {
  tape::SegmentId start = std::min<tape::SegmentId>(
      slot * group_segments, model_.geometry().total_segments() - 1);
  double sum = 0.0;
  for (tape::SegmentId src : probes_) {
    sum += model_.LocateSeconds(src, start);
  }
  return sum / static_cast<double>(probes_.size());
}

namespace {

// A co-access chain under construction: an ordered list of hot groups.
// Chains merge end-to-end when an affinity edge joins two endpoints, so a
// chain is always placeable as one contiguous slot run with its heaviest
// co-access pairs adjacent.
struct Chain {
  std::vector<int64_t> groups;
  int64_t heat = 0;
  bool alive = true;
};

}  // namespace

Placement PlacementOptimizer::Optimize(const HeatMap& heat,
                                       OptimizerStats* stats) const {
  const int64_t g_count = heat.num_groups();
  const int64_t gs = heat.group_segments();
  SERPENTINE_CHECK_EQ(heat.total_segments(),
                      model_.geometry().total_segments());
  OptimizerStats local;
  if (stats == nullptr) stats = &local;
  *stats = OptimizerStats{};

  Placement identity = Placement::Identity(heat.total_segments(), gs);
  if (heat.total_heat() == 0 || g_count < 2) return identity;

  // The remainder group (if any) stays pinned in the last slot so every
  // slot start remains slot * group_segments — the wear-bin and goodness
  // precomputations below rely on that alignment.
  const bool has_short = heat.group_size(g_count - 1) != gs;

  std::vector<double> goodness(g_count);
  for (int64_t k = 0; k < g_count; ++k) goodness[k] = SlotGoodness(k, gs);

  // Projected per-bin motion. Serving a segment in reading section r
  // first backs the head up to the key point opening section r-1, then
  // reads forward to the destination — so every serve drags the head
  // across the whole [scan target, destination] span, and the bins just
  // past a hot section's key point are crossed by every serve to that
  // entire section. A slot's wear footprint is therefore that exact
  // model-derived window, not merely its own bin; co-locating hot groups
  // deep into one section funnels all their backups over the same bins.
  const int bins = heat.wear_baseline().empty()
                       ? options_.wear_bins
                       : static_cast<int>(heat.wear_baseline().size());
  const double bin_width =
      model_.geometry().params().physical_sections / bins;
  auto bin_at = [&](double p) {
    return std::clamp(static_cast<int>(p / bin_width), 0, bins - 1);
  };
  // Per-slot scan window [lo_bin, hi_bin], precomputed once.
  std::vector<int> window_lo(g_count), window_hi(g_count);
  for (int64_t s = 0; s < g_count; ++s) {
    tape::SegmentId mid = std::min<tape::SegmentId>(
        s * gs + gs / 2, heat.total_segments() - 1);
    double p_dst = model_.geometry().PhysicalPosition(mid);
    int track = model_.geometry().TrackOf(mid);
    int r_kp = std::max(0, model_.geometry().ReadingSectionOf(mid) - 1);
    double p_kp = model_.geometry().KeyPointPhysical(track, r_kp);
    window_lo[s] = bin_at(std::min(p_kp, p_dst));
    window_hi[s] = bin_at(std::max(p_kp, p_dst));
  }
  // The load a group projects is its per-batch *visit* rate, not its raw
  // heat: the scheduler reads through a visited section in ascending
  // order, so five serves of one group in a batch cost one key-point
  // backup. Capping visit rates levels what the head actually crosses.
  const double batches_seen =
      static_cast<double>(std::max<int64_t>(1, heat.batches_recorded()));
  auto visit_rate = [&](int64_t g) {
    return std::min(options_.max_group_visit_rate,
                    static_cast<double>(heat.group_heat(g)) / batches_seen);
  };
  std::vector<double> load(bins, 0.0);
  auto smear = [&](std::vector<double>& into, int64_t slot, double h,
                   double dir) {
    for (int b = window_lo[slot]; b <= window_hi[slot]; ++b) {
      into[b] += dir * h;
    }
  };
  for (int64_t g = 0; g < g_count; ++g) {
    smear(load, g, visit_rate(g), +1.0);
  }
  if (!heat.wear_baseline().empty()) {
    // The baseline is already measured motion per bin; scale it so its
    // total matches the projection's (heat × mean window width), making
    // history and projection share one cap.
    int64_t base_total = 0;
    for (int64_t p : heat.wear_baseline()) base_total += p;
    double projected_total =
        std::accumulate(load.begin(), load.end(), 0.0);
    if (base_total > 0 && projected_total > 0) {
      double scale = projected_total / static_cast<double>(base_total);
      for (int i = 0; i < bins; ++i) {
        load[i] += static_cast<double>(heat.wear_baseline()[i]) * scale;
      }
    }
  }
  // The cap is relative to the seed layout: no bin may project more
  // motion than wear_cap_factor times the identity layout's worst bin.
  const double identity_peak = *std::max_element(load.begin(), load.end());
  const double cap = options_.wear_cap_factor * identity_peak;

  // Hot set: the smallest heat-descending prefix covering hot_fraction of
  // the total.
  std::vector<int64_t> by_heat;
  for (int64_t g = 0; g < g_count; ++g) {
    if (heat.group_heat(g) > 0 && !(has_short && g == g_count - 1)) {
      by_heat.push_back(g);
    }
  }
  std::sort(by_heat.begin(), by_heat.end(), [&](int64_t x, int64_t y) {
    if (heat.group_heat(x) != heat.group_heat(y)) {
      return heat.group_heat(x) > heat.group_heat(y);
    }
    return x < y;
  });
  const int64_t target_heat = static_cast<int64_t>(
      std::ceil(options_.hot_fraction *
                static_cast<double>(heat.total_heat())));
  std::vector<char> hot(g_count, 0);
  std::vector<int64_t> hot_groups;
  int64_t covered = 0;
  for (int64_t g : by_heat) {
    if (covered >= target_heat) break;
    hot[g] = 1;
    hot_groups.push_back(g);
    covered += heat.group_heat(g);
  }
  if (hot_groups.empty()) return identity;
  stats->hot_groups = static_cast<int64_t>(hot_groups.size());

  // Chain hot groups along their heaviest affinity edges (endpoint merges
  // only, so every chain stays a simple path).
  std::vector<Chain> chains;
  std::vector<int64_t> chain_of(g_count, -1);
  for (int64_t g : hot_groups) {
    chain_of[g] = static_cast<int64_t>(chains.size());
    chains.push_back(Chain{{g}, heat.group_heat(g), true});
  }
  for (const Affinity& e : heat.TopAffinities(options_.max_affinities)) {
    if (e.a >= g_count || e.b >= g_count) continue;
    if (!hot[e.a] || !hot[e.b]) continue;
    int64_t ca = chain_of[e.a];
    int64_t cb = chain_of[e.b];
    if (ca == cb) continue;
    Chain& A = chains[ca];
    Chain& B = chains[cb];
    if (static_cast<int64_t>(A.groups.size() + B.groups.size()) >
        options_.max_chain_groups) {
      continue;
    }
    bool a_end = A.groups.front() == e.a || A.groups.back() == e.a;
    bool b_end = B.groups.front() == e.b || B.groups.back() == e.b;
    if (!a_end || !b_end) continue;
    if (A.groups.back() != e.a) {
      std::reverse(A.groups.begin(), A.groups.end());
    }
    if (B.groups.front() != e.b) {
      std::reverse(B.groups.begin(), B.groups.end());
    }
    for (int64_t g : B.groups) {
      chain_of[g] = ca;
      A.groups.push_back(g);
    }
    A.heat += B.heat;
    B.alive = false;
    B.groups.clear();
  }
  std::vector<const Chain*> placed_order;
  for (const Chain& c : chains) {
    if (c.alive) placed_order.push_back(&c);
  }
  // Heat *density* (per-group) ordering: total-heat ordering lets one
  // long chain with a heavy head drag its lukewarm tail into the prime
  // end-of-tape slots, flattening the heat gradient the tail anchor is
  // built on.
  std::sort(placed_order.begin(), placed_order.end(),
            [](const Chain* x, const Chain* y) {
              int64_t lhs = x->heat * static_cast<int64_t>(y->groups.size());
              int64_t rhs = y->heat * static_cast<int64_t>(x->groups.size());
              if (lhs != rhs) return lhs > rhs;
              return x->groups.front() < y->groups.front();
            });
  stats->chains = static_cast<int64_t>(placed_order.size());

  // Tail-anchored assignment: heaviest chain first, the topmost contiguous
  // free run in segment space that respects the wear cap. Chained tours
  // are served in ascending segment order, so every batch parks the head
  // at the top of segment space — a tail-packed hot core means each tour
  // ends inside the hot set instead of winding across it, which both
  // shortens the next batch's locates and keeps cross-core pass-over
  // motion off the wear hub. The cap only vetoes: a chain slides down
  // from the tail until its projected bins fit, and is counted as a
  // relaxation when no compliant run exists.
  std::vector<int64_t> order(g_count, -1);
  std::vector<char> slot_free(g_count, 1);
  std::vector<char> group_placed(g_count, 0);
  if (has_short) {
    order[g_count - 1] = g_count - 1;
    slot_free[g_count - 1] = 0;
    group_placed[g_count - 1] = 1;
  }
  std::vector<double> delta(bins, 0.0);
  std::vector<int> touched;
  for (const Chain* chain : placed_order) {
    const int64_t len = static_cast<int64_t>(chain->groups.size());
    // The chain's load leaves its identity bins before feasibility is
    // judged — it is moving no matter which run wins.
    for (int64_t g : chain->groups) {
      smear(load, g, visit_rate(g), -1.0);
    }
    int64_t best_slot = -1, relax_slot = -1;
    double relax_overflow = std::numeric_limits<double>::infinity();
    int64_t free_below = 0;  // free slots in [s, s + len) as s descends
    for (int64_t i = g_count - len; i < g_count; ++i) {
      free_below += slot_free[i];
    }
    for (int64_t s = g_count - len; s >= 0; --s) {
      if (free_below == len) {
        // Feasible iff every scan-window bin the chain would load stays
        // under the cap (delta accumulates overlap between the chain's
        // own members' windows). Infeasible runs are ranked by how far
        // their worst bin overshoots, so a forced relaxation lands where
        // it concentrates the least wear.
        for (int b : touched) delta[b] = 0.0;
        touched.clear();
        double overflow = 0.0;
        for (int64_t i = 0; i < len; ++i) {
          int lo = window_lo[s + i];
          int hi = window_hi[s + i];
          double add = visit_rate(chain->groups[i]);
          for (int b = lo; b <= hi; ++b) {
            if (delta[b] == 0.0) touched.push_back(b);
            delta[b] += add;
            overflow = std::max(overflow, load[b] + delta[b] - cap);
          }
        }
        if (overflow <= 0.0) {
          best_slot = s;
          break;  // topmost compliant run wins
        }
        if (overflow < relax_overflow) {
          relax_overflow = overflow;
          relax_slot = s;
        }
      }
      if (s > 0) {
        free_below += slot_free[s - 1];
        free_below -= slot_free[s + len - 1];
      }
    }
    if (best_slot < 0) {
      best_slot = relax_slot;
      ++stats->wear_relaxations;
    }
    SERPENTINE_CHECK_GE(best_slot, 0);
    for (int64_t i = 0; i < len; ++i) {
      int64_t g = chain->groups[i];
      order[best_slot + i] = g;
      slot_free[best_slot + i] = 0;
      group_placed[g] = 1;
      smear(load, best_slot + i, visit_rate(g), +1.0);
    }
    for (int b : touched) delta[b] = 0.0;
    touched.clear();
  }
  // Cold groups: home slot when still free, else the remaining free slots
  // in index order.
  std::vector<int64_t> displaced;
  for (int64_t g = 0; g < g_count; ++g) {
    if (group_placed[g]) continue;
    if (slot_free[g]) {
      order[g] = g;
      slot_free[g] = 0;
      group_placed[g] = 1;
    } else {
      displaced.push_back(g);
    }
  }
  size_t next_displaced = 0;
  for (int64_t s = 0; s < g_count && next_displaced < displaced.size();
       ++s) {
    if (!slot_free[s]) continue;
    order[s] = displaced[next_displaced++];
    slot_free[s] = 0;
  }
  SERPENTINE_CHECK_EQ(next_displaced, displaced.size());

  StatusOr<Placement> placement =
      Placement::FromOrder(heat.total_segments(), gs, std::move(order));
  SERPENTINE_CHECK(placement.ok());
  stats->moved_groups = placement.value().moved_groups();
  double heat_sum = 0.0, before = 0.0, after = 0.0;
  for (int64_t g : hot_groups) {
    double h = static_cast<double>(heat.group_heat(g));
    heat_sum += h;
    before += h * goodness[g];
    after += h * goodness[placement.value().slot_of(g)];
  }
  if (heat_sum > 0) {
    stats->hot_goodness_before = before / heat_sum;
    stats->hot_goodness_after = after / heat_sum;
  }
  return placement.value();
}

// -------------------------------------------------------- EvaluatePlacement

StatusOr<PlacementEvaluation> EvaluatePlacement(
    const tape::Dlt4000LocateModel& model, const Placement& placement,
    workload::RequestGenerator& generator, const sched::RegistryEntry& entry,
    const EvaluateOptions& options) {
  if (placement.total_segments() != model.geometry().total_segments()) {
    return InvalidArgumentError(
        "EvaluatePlacement: placement covers " +
        std::to_string(placement.total_segments()) +
        " segments, model tape has " +
        std::to_string(model.geometry().total_segments()));
  }
  PlacementEvaluation eval;
  sim::WearTracker wear(&model.geometry(), options.wear_bins);
  tape::SegmentId position = 0;
  for (int b = 0; b < options.batches; ++b) {
    std::vector<sched::Request> logical = generator.Batch(options.batch_size);
    eval.requests += static_cast<int64_t>(logical.size());
    std::vector<sched::Request> physical = placement.RemapBatch(logical);
    StatusOr<sched::Schedule> schedule =
        entry.build(model, position, std::move(physical), entry.options);
    if (!schedule.ok()) return schedule.status();
    sched::EstimateOptions exec_options;
    exec_options.rewind_at_end = options.rewind_between_batches;
    sim::ExecutionResult result =
        sim::ExecuteSchedule(model, schedule.value(), exec_options);
    wear.RecordSchedule(model, schedule.value(),
                        options.rewind_between_batches);
    eval.makespan_seconds += result.total_seconds;
    position = options.rewind_between_batches ? 0 : result.final_position;
    ++eval.batches;
  }
  eval.max_passes = wear.max_passes();
  eval.mean_passes = wear.mean_passes();
  eval.life_consumed = wear.life_consumed();
  eval.tape_lengths = wear.full_length_equivalents();
  return eval;
}

}  // namespace serpentine::layout
