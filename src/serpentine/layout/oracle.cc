#include "serpentine/layout/oracle.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "serpentine/sched/scheduler.h"
#include "serpentine/sim/executor.h"
#include "serpentine/util/check.h"
#include "serpentine/util/lrand48.h"

namespace serpentine::layout {

LinearSeekOracle LinearSeekOracle::ForModel(
    tape::SegmentId total_segments, double overhead_seconds,
    double seconds_per_segment, double transfer_seconds_per_segment) {
  LinearSeekOracle oracle;
  oracle.total_segments = total_segments;
  oracle.overhead_seconds = overhead_seconds;
  oracle.seconds_per_segment = seconds_per_segment;
  oracle.transfer_seconds_per_segment = transfer_seconds_per_segment;
  return oracle;
}

double LinearSeekOracle::PredictFifoTourSeconds(int64_t n) const {
  SERPENTINE_CHECK_GT(n, 0);
  const double t = static_cast<double>(total_segments);
  const double nn = static_cast<double>(n);
  return nn * overhead_seconds +
         seconds_per_segment * (t / 2.0 + (nn - 1.0) * t / 3.0) +
         nn * transfer_seconds_per_segment;
}

double LinearSeekOracle::PredictSortedTourSeconds(int64_t n) const {
  SERPENTINE_CHECK_GT(n, 0);
  const double t = static_cast<double>(total_segments);
  const double nn = static_cast<double>(n);
  return nn * overhead_seconds +
         seconds_per_segment * (t * nn / (nn + 1.0) - (nn - 1.0)) +
         nn * transfer_seconds_per_segment;
}

double PredictForwardPasses(int64_t n) {
  SERPENTINE_CHECK_GT(n, 0);
  const double nn = static_cast<double>(n);
  // 2*sqrt(n) is Vershik–Kerov's leading term; -1.7711*n^(1/6) is the
  // mean of the Tracy–Widom GUE fluctuation (Baik–Deift–Johansson).
  return 2.0 * std::sqrt(nn) - 1.7711 * std::pow(nn, 1.0 / 6.0);
}

int64_t LongestDecreasingSubsequence(const std::vector<double>& keys) {
  // LDS(keys) == LIS(negated keys); patience tails, O(n log n).
  std::vector<double> tails;
  for (double k : keys) {
    double negated = -k;
    auto it = std::lower_bound(tails.begin(), tails.end(), negated);
    if (it == tails.end()) {
      tails.push_back(negated);
    } else {
      *it = negated;
    }
  }
  return static_cast<int64_t>(tails.size());
}

std::vector<std::vector<int32_t>> ForwardPassPartition(
    const std::vector<double>& keys) {
  std::vector<std::vector<int32_t>> passes;
  // Last element of each open pass → pass index. Best fit: extend the
  // pass with the largest last element strictly below the key.
  std::multimap<double, size_t> open;
  for (int32_t i = 0; i < static_cast<int32_t>(keys.size()); ++i) {
    auto it = open.lower_bound(keys[i]);
    if (it == open.begin()) {
      passes.push_back({i});
      open.emplace(keys[i], passes.size() - 1);
    } else {
      --it;
      size_t pass = it->second;
      passes[pass].push_back(i);
      open.erase(it);
      open.emplace(keys[i], pass);
    }
  }
  return passes;
}

double MeasureMeanTourSeconds(const tape::LocateModel& model,
                              sched::Algorithm algorithm, int64_t n,
                              int64_t trials, int32_t seed) {
  SERPENTINE_CHECK_GT(trials, 0);
  const tape::SegmentId total = model.geometry().total_segments();
  double sum = 0.0;
  for (int64_t trial = 0; trial < trials; ++trial) {
    Lrand48 rng;
    rng.SeedState(DeriveRand48State(seed, trial));
    std::vector<sched::Request> batch;
    batch.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      batch.push_back(sched::Request{rng.NextBounded(total), 1});
    }
    StatusOr<sched::Schedule> schedule =
        sched::BuildSchedule(model, /*initial_position=*/0, batch, algorithm);
    SERPENTINE_CHECK(schedule.ok());
    sum += sim::ExecuteSchedule(model, schedule.value()).total_seconds;
  }
  return sum / static_cast<double>(trials);
}

}  // namespace serpentine::layout
