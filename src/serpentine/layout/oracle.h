// Analytic oracle for linear-seek scheduling, after Bachmat's space-time
// geometry analysis of disk scheduling (see PAPERS.md): on a drive whose
// locate cost is overhead + seconds_per_segment * |distance| (the
// HelicalLocateModel), the mean tour length of FIFO and nearest-ascending
// (SORT) service admits closed forms, and the minimal number of forward
// passes over a batch equals the longest decreasing subsequence of its
// key sequence (Dilworth), whose expectation follows the
// Vershik–Kerov / Baik–Deift–Johansson law 2*sqrt(n) - 1.7711 * n^(1/6).
//
// These are the simulator's first *independent* checks: the predictions
// come from probability theory, not from the code under test, so a
// regression in the scheduler, the executor, or the RNG shows up as a
// divergence from the closed form (docs/placement.md has the derivations
// and tolerances; tests/layout_oracle_test.cc pins them).
#ifndef SERPENTINE_LAYOUT_ORACLE_H_
#define SERPENTINE_LAYOUT_ORACLE_H_

#include <cstdint>
#include <vector>

#include "serpentine/sched/request.h"
#include "serpentine/tape/locate_model.h"

namespace serpentine::layout {

/// Closed-form mean tour lengths on a linear-seek drive serving n
/// uniformly random single-segment requests from head position 0.
struct LinearSeekOracle {
  /// Mirror of the HelicalLocateModel's parameters.
  tape::SegmentId total_segments = 0;
  double overhead_seconds = 5.0;
  double seconds_per_segment = 2.5e-4;
  double transfer_seconds_per_segment = 0.0655;

  /// Reads the parameters off an existing model's defaults.
  static LinearSeekOracle ForModel(tape::SegmentId total_segments,
                                   double overhead_seconds,
                                   double seconds_per_segment,
                                   double transfer_seconds_per_segment);

  /// FIFO: first locate from 0 averages T/2; each later locate is the
  /// mean absolute gap between independent uniforms, T/3.
  ///   E = n*overhead + s*(T/2 + (n-1)*T/3) + n*transfer
  double PredictFifoTourSeconds(int64_t n) const;

  /// SORT (ascending service): the distance telescopes to the maximum of
  /// n uniforms, T*n/(n+1), minus the n-1 single-segment head advances
  /// the reads already cover.
  ///   E = n*overhead + s*(T*n/(n+1) - (n-1)) + n*transfer
  double PredictSortedTourSeconds(int64_t n) const;
};

/// Expected minimal number of forward passes (strictly increasing
/// subsequences) covering n iid uniform keys:
/// 2*sqrt(n) - 1.7711 * n^(1/6) (the Tracy–Widom mean of the
/// Baik–Deift–Johansson fluctuation term).
double PredictForwardPasses(int64_t n);

/// Length of the longest strictly decreasing subsequence of `keys` —
/// by Dilworth's theorem, the minimal number of strictly increasing
/// subsequences covering them. O(n log n).
int64_t LongestDecreasingSubsequence(const std::vector<double>& keys);

/// Greedy best-fit partition of `keys` (in arrival order) into strictly
/// increasing subsequences ("forward passes"): each key extends the pass
/// with the largest last element below it, or opens a new pass. The pass
/// count achieves the Dilworth minimum. Returns, per pass, the indices
/// into `keys` it serves.
std::vector<std::vector<int32_t>> ForwardPassPartition(
    const std::vector<double>& keys);

/// Measured mean tour seconds: `trials` batches of `n` uniform requests
/// (per-trial decorrelated rand48 streams), scheduled by `algorithm` and
/// executed from position 0 through the real BuildSchedule/ExecuteSchedule
/// pipeline on `model`. What the oracle's closed forms predict.
double MeasureMeanTourSeconds(const tape::LocateModel& model,
                              sched::Algorithm algorithm, int64_t n,
                              int64_t trials, int32_t seed);

}  // namespace serpentine::layout

#endif  // SERPENTINE_LAYOUT_ORACLE_H_
