// Segment placement: a bijective logical→physical remapping at group
// granularity, and the optimizer that proposes one from a HeatMap.
//
// A Placement is a permutation of the HeatMap's groups: order()[slot] is
// the group whose data occupies physical slot `slot`. Group sizes are
// uniform except the final remainder group, so physical slot starts are
// the prefix sums of the group sizes in slot order; ToPhysical/ToLogical
// are exact inverses over the whole tape.
//
// The optimizer is *tail-anchored* (docs/placement.md): schedulers serve
// each batch in ascending segment order, so under chained batches the
// head finishes every tour parked near the top of segment space. Packing
// the hot set at the TAIL of segment space — hottest groups at the
// extreme end — means each tour ends inside the hot core, so the next
// batch's hot serves start from next door instead of winding the head
// back across the tape (the scan pass-over that dominates both makespan
// and the wear peak under a mid-tape hot core). Concretely:
//   * hot groups are sorted by heat density and placed from the tail of
//     slot space downward, hottest last;
//   * slot goodness (Monte-Carlo mean locate time, with most probe
//     sources drawn from the chained-tour turnaround region) is reported
//     in OptimizerStats for diagnostics;
//   * wear leveling is a veto, not a score — each candidate run's
//     projected heat is smeared over the locate footprint its serves drag
//     the head across, and a run is rejected while any bin would project
//     more motion than the identity layout's worst bin times
//     wear_cap_factor; when no compliant run exists the least-overflowing
//     one is taken (counted as a relaxation).
#ifndef SERPENTINE_LAYOUT_PLACEMENT_H_
#define SERPENTINE_LAYOUT_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "serpentine/layout/heat_map.h"
#include "serpentine/sched/registry.h"
#include "serpentine/sched/request.h"
#include "serpentine/tape/locate_model.h"
#include "serpentine/util/statusor.h"
#include "serpentine/workload/generators.h"

namespace serpentine::layout {

/// A bijective group permutation over one tape.
class Placement {
 public:
  /// The identity placement (every group at its home slot).
  static Placement Identity(tape::SegmentId total_segments,
                            int64_t group_segments);

  /// A placement from an explicit slot→group order. Fails unless `order`
  /// is a permutation of [0, num_groups).
  static StatusOr<Placement> FromOrder(tape::SegmentId total_segments,
                                       int64_t group_segments,
                                       std::vector<int64_t> order);

  tape::SegmentId total_segments() const { return total_; }
  int64_t group_segments() const { return group_segments_; }
  int64_t num_groups() const { return static_cast<int64_t>(order_.size()); }
  const std::vector<int64_t>& order() const { return order_; }

  /// Physical segment address of logical segment `logical`.
  tape::SegmentId ToPhysical(tape::SegmentId logical) const;
  /// Logical segment stored at physical address `physical` (the inverse).
  tape::SegmentId ToLogical(tape::SegmentId physical) const;

  /// Physical start of the slot holding group `group`.
  tape::SegmentId group_physical_start(int64_t group) const {
    return slot_start_[slot_of_[group]];
  }
  /// Slot index holding group `group`.
  int64_t slot_of(int64_t group) const { return slot_of_[group]; }

  /// Remaps a logical batch to physical addresses, splitting any request
  /// whose span crosses a group boundary (the pieces land wherever their
  /// groups do).
  std::vector<sched::Request> RemapBatch(
      const std::vector<sched::Request>& batch) const;

  bool is_identity() const;
  /// Groups whose physical home differs from the identity layout.
  int64_t moved_groups() const;

 private:
  Placement() = default;
  void BuildIndex();

  tape::SegmentId total_ = 0;
  int64_t group_segments_ = 1;
  std::vector<int64_t> order_;       // slot → group
  std::vector<int64_t> slot_of_;     // group → slot
  std::vector<tape::SegmentId> slot_start_;  // slot → physical start
};

/// Optimizer knobs. Defaults suit the DLT4000 geometry the benches use.
struct OptimizerOptions {
  /// Monte-Carlo probe sources per slot-goodness estimate.
  int probe_sources = 64;
  int32_t probe_seed = 1;
  /// Fraction of probe sources drawn from the chained-tour turnaround
  /// region (the top 1/16 of segment space). Schedulers serve batches in
  /// ascending segment order, so with batch chaining the head starts most
  /// locates parked near the top of segment space — goodness scored from
  /// there steers the hot set toward the tail, where each tour ends
  /// inside the hot core instead of winding across it.
  double steady_state_fraction = 0.75;
  /// Fraction of total heat the relocated hot set must cover. The default
  /// moves every group with observed traffic: leaving a lukewarm residue
  /// scattered across the tape forces mid-tape excursions that wind the
  /// head back over the hot core (measured as both extra makespan and a
  /// taller wear hub).
  double hot_fraction = 1.0;
  /// Longest co-access chain placed as one contiguous run. Chaining is
  /// off by default: under tail-anchored placement the heat gradient
  /// already makes co-accessed hot groups near-adjacent, and dragging a
  /// chain's lukewarm tail into the prime end-of-tape slots measurably
  /// raises both makespan and peak wear. Raise the limit only for
  /// workloads with strong cross-group runs.
  int64_t max_chain_groups = 1;
  /// Affinity edges considered when chaining.
  size_t max_affinities = 4096;
  /// Wear bins when the HeatMap carries no baseline (else the baseline's
  /// bin count wins).
  int wear_bins = 140;
  /// Per-bin projected motion cap, as a multiple of the identity layout's
  /// worst bin. Each slot's heat is smeared over its model-exact scan
  /// window [preceding key point, destination] — the tape a serve
  /// actually drags the head across. 1.0 means "no physical region may
  /// project more motion than the seed layout's hottest region"; below
  /// 1.0 forces strict leveling.
  double wear_cap_factor = 0.9;
  /// Ceiling on one group's projected per-batch serve rate. A group
  /// revisited within a batch re-pays its key-point backup on every
  /// serve, so duplicates do wear the funnel bins — but weighting them
  /// fully makes the heaviest group look unplaceable anywhere, forcing
  /// cap relaxations. The ceiling keeps the projection conservative
  /// without letting duplicates dominate the veto.
  double max_group_visit_rate = 1.0;
};

/// What the optimizer did, for logs and benches.
struct OptimizerStats {
  int64_t hot_groups = 0;
  int64_t chains = 0;
  int64_t moved_groups = 0;
  int64_t wear_relaxations = 0;
  /// Heat-weighted mean slot goodness (seconds) of the hot set before and
  /// after — lower is better.
  double hot_goodness_before = 0.0;
  double hot_goodness_after = 0.0;
};

/// Proposes a Placement for a HeatMap against one locate model.
class PlacementOptimizer {
 public:
  explicit PlacementOptimizer(const tape::Dlt4000LocateModel& model,
                              OptimizerOptions options = {});

  /// The proposed placement. Deterministic for a given (model, heat,
  /// options). A heat map with no recorded traffic yields the identity.
  Placement Optimize(const HeatMap& heat, OptimizerStats* stats = nullptr)
      const;

  /// Mean locate seconds from `probe_sources` random head positions to
  /// the start of slot `slot` — the optimizer's goodness score (lower =
  /// faster region).
  double SlotGoodness(int64_t slot, int64_t group_segments) const;

 private:
  const tape::Dlt4000LocateModel& model_;
  OptimizerOptions options_;
  std::vector<tape::SegmentId> probes_;
};

/// One layout's measured cost on a workload: chained batches scheduled by
/// a registry entry, executed on the model, wear recorded per schedule.
struct PlacementEvaluation {
  double makespan_seconds = 0.0;
  double life_consumed = 0.0;
  int64_t max_passes = 0;
  double mean_passes = 0.0;
  double tape_lengths = 0.0;
  int64_t batches = 0;
  int64_t requests = 0;
};

struct EvaluateOptions {
  int batches = 20;
  int batch_size = 192;
  int wear_bins = 140;
  bool rewind_between_batches = false;
};

/// Runs `options.batches` chained batches from `generator` through
/// `entry`'s scheduler under `placement` (logical batches remapped to
/// physical addresses) and totals time + wear. The head carries across
/// batches, as in the paper's chained-batch experiments.
StatusOr<PlacementEvaluation> EvaluatePlacement(
    const tape::Dlt4000LocateModel& model, const Placement& placement,
    workload::RequestGenerator& generator, const sched::RegistryEntry& entry,
    const EvaluateOptions& options = {});

}  // namespace serpentine::layout

#endif  // SERPENTINE_LAYOUT_PLACEMENT_H_
