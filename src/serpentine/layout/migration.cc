#include "serpentine/layout/migration.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <utility>

#include "serpentine/sched/estimator.h"
#include "serpentine/sim/executor.h"
#include "serpentine/util/check.h"
#include "serpentine/util/lrand48.h"
#include "serpentine/util/status.h"

namespace serpentine::layout {

namespace {

int64_t GroupSize(const Placement& target, int64_t group) {
  return std::min<int64_t>(
      target.group_segments(),
      target.total_segments() - group * target.group_segments());
}

// Contiguous destination runs of a batch's groups: [first, last] physical
// segment spans, in ascending slot order. Groups occupying consecutive
// slots share one run (one locate, one streaming transfer).
std::vector<std::pair<tape::SegmentId, tape::SegmentId>> DestinationRuns(
    const std::vector<int64_t>& groups, const Placement& target) {
  std::vector<int64_t> by_slot = groups;
  std::sort(by_slot.begin(), by_slot.end(), [&](int64_t x, int64_t y) {
    return target.slot_of(x) < target.slot_of(y);
  });
  std::vector<std::pair<tape::SegmentId, tape::SegmentId>> runs;
  for (int64_t g : by_slot) {
    tape::SegmentId start = target.group_physical_start(g);
    tape::SegmentId end = start + GroupSize(target, g) - 1;
    if (!runs.empty() && runs.back().second + 1 == start) {
      runs.back().second = end;
    } else {
      runs.emplace_back(start, end);
    }
  }
  return runs;
}

// Write-leg cost of `runs` from head position `position` on the model:
// per run, one locate plus a streaming transfer at the read rate (the
// transport writes at the same speed it reads). Returns the cost and
// leaves `position` past the last run.
double WriteLegSeconds(const tape::LocateModel& model,
                       const std::vector<std::pair<tape::SegmentId,
                                                   tape::SegmentId>>& runs,
                       tape::SegmentId* position) {
  const tape::SegmentId last =
      model.geometry().total_segments() - 1;
  double seconds = 0.0;
  for (const auto& [start, end] : runs) {
    if (*position != start) seconds += model.LocateSeconds(*position, start);
    seconds += model.ReadSeconds(start, end);
    *position = std::min<tape::SegmentId>(end + 1, last);
  }
  return seconds;
}

}  // namespace

StatusOr<MigrationPlan> PlanMigration(const tape::Dlt4000LocateModel& model,
                                      const Placement& target,
                                      const sched::Registry& registry,
                                      const MigrationOptions& options) {
  if (options.batch_groups <= 0) {
    return InvalidArgumentError(
        "PlanMigration: batch_groups must be positive, got " +
        std::to_string(options.batch_groups));
  }
  StatusOr<const sched::RegistryEntry*> entry =
      registry.Resolve(options.algorithm);
  if (!entry.ok()) return entry.status();

  // Moved groups in destination-slot order, so consecutive batches write
  // consecutive regions.
  std::vector<int64_t> moved;
  for (int64_t slot = 0; slot < target.num_groups(); ++slot) {
    int64_t group = target.order()[slot];
    if (group != slot) moved.push_back(group);
  }

  MigrationPlan plan;
  plan.moved_groups = static_cast<int64_t>(moved.size());
  tape::SegmentId position = 0;
  for (size_t at = 0; at < moved.size(); at += options.batch_groups) {
    MigrationBatch batch;
    size_t end = std::min(moved.size(),
                          at + static_cast<size_t>(options.batch_groups));
    std::vector<sched::Request> reads;
    for (size_t i = at; i < end; ++i) {
      int64_t g = moved[i];
      batch.groups.push_back(g);
      int64_t size = GroupSize(target, g);
      reads.push_back(
          sched::Request{g * target.group_segments(), size});
      batch.segments += size;
    }
    StatusOr<sched::Schedule> schedule = (*entry)->build(
        model, position, std::move(reads), (*entry)->options);
    if (!schedule.ok()) return schedule.status();
    sim::ExecutionResult read_result =
        sim::ExecuteSchedule(model, schedule.value());
    batch.reads = std::move(schedule).value();
    batch.read_seconds = read_result.total_seconds;
    position = read_result.final_position;
    batch.write_seconds = WriteLegSeconds(
        model, DestinationRuns(batch.groups, target), &position);
    plan.segments += batch.segments;
    plan.estimated_seconds += batch.read_seconds + batch.write_seconds;
    plan.batches.push_back(std::move(batch));
  }
  return plan;
}

MigrationExecution ExecuteMigration(drive::Drive& drive,
                                    const MigrationPlan& plan,
                                    const Placement& target) {
  MigrationExecution exec;
  for (const MigrationBatch& batch : plan.batches) {
    sim::ExecutionResult reads = sim::ExecuteSchedule(drive, batch.reads);
    exec.read_seconds += reads.total_seconds;
    for (const auto& [start, end] : DestinationRuns(batch.groups, target)) {
      if (drive.Position() != start) {
        drive::OpResult locate = drive.Locate(start);
        exec.write_seconds += locate.times.total();
      }
      // Streaming write modeled at the transport's read rate.
      drive::OpResult transfer = drive.ReadSegments(start, end);
      exec.write_seconds += transfer.times.total();
    }
    exec.segments += batch.segments;
    ++exec.batches;
  }
  exec.total_seconds = exec.read_seconds + exec.write_seconds;
  exec.batches = static_cast<int64_t>(plan.batches.size());
  return exec;
}

StatusOr<InterleavedResult> RunInterleavedMigration(
    const tape::Dlt4000LocateModel& model, const MigrationPlan& plan,
    const Placement& target, const sched::Registry& registry,
    const InterleavedOptions& options) {
  if (!(options.arrival_rate_per_hour > 0.0)) {
    return InvalidArgumentError(
        "RunInterleavedMigration: arrival_rate_per_hour must be > 0");
  }
  StatusOr<const sched::RegistryEntry*> entry =
      registry.Resolve(options.algorithm);
  if (!entry.ok()) return entry.status();
  const tape::TapeGeometry& geometry = model.geometry();

  // Foreground Poisson stream over the physical segment space.
  struct Arrival {
    double time;
    tape::SegmentId segment;
  };
  std::vector<Arrival> arrivals;
  arrivals.reserve(options.foreground_requests);
  Lrand48 rng(options.seed);
  const double mean_gap = 3600.0 / options.arrival_rate_per_hour;
  double t = 0.0;
  for (int64_t i = 0; i < options.foreground_requests; ++i) {
    t += -std::log(1.0 - rng.NextDouble()) * mean_gap;
    arrivals.push_back(Arrival{t, rng.NextBounded(geometry.total_segments())});
  }

  // The plan, flattened to a group stream the ladder slices.
  std::vector<int64_t> remaining;
  int64_t full_slice = 0;
  for (const MigrationBatch& batch : plan.batches) {
    full_slice = std::max<int64_t>(
        full_slice, static_cast<int64_t>(batch.groups.size()));
    remaining.insert(remaining.end(), batch.groups.begin(),
                     batch.groups.end());
  }
  const double per_group_seconds =
      plan.moved_groups > 0
          ? plan.estimated_seconds / static_cast<double>(plan.moved_groups)
          : 0.0;

  InterleavedResult result;
  std::vector<double> responses;
  responses.reserve(arrivals.size());
  double clock = 0.0;
  tape::SegmentId position = 0;
  size_t next_arrival = 0;
  size_t next_group = 0;
  std::vector<Arrival> pending;

  while (next_arrival < arrivals.size() || !pending.empty() ||
         next_group < remaining.size()) {
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].time <= clock) {
      pending.push_back(arrivals[next_arrival++]);
    }
    if (!pending.empty()) {
      // Dispatch everything queued as one scheduled batch, stamping each
      // request as the head reaches it (FIFO among same-segment
      // duplicates).
      std::unordered_map<tape::SegmentId, std::deque<double>> waiting;
      std::vector<sched::Request> requests;
      requests.reserve(pending.size());
      for (const Arrival& a : pending) {
        waiting[a.segment].push_back(a.time);
        requests.push_back(sched::Request{a.segment, 1});
      }
      StatusOr<sched::Schedule> schedule = (*entry)->build(
          model, position, std::move(requests), (*entry)->options);
      if (!schedule.ok()) return schedule.status();
      double start = clock;
      for (const sched::Request& r : schedule.value().order) {
        if (position != r.segment) {
          clock += model.LocateSeconds(position, r.segment);
        }
        clock += model.ReadSeconds(r.segment, r.segment + r.count - 1);
        position = sched::OutPosition(geometry, r);
        std::deque<double>& q = waiting[r.segment];
        SERPENTINE_CHECK(!q.empty());
        responses.push_back(clock - q.front());
        q.pop_front();
        ++result.foreground_completed;
      }
      result.foreground_seconds += clock - start;
      pending.clear();
      continue;
    }
    if (next_group < remaining.size()) {
      // Ladder rung by expected arrivals during a full slice.
      double expected = options.arrival_rate_per_hour / 3600.0 *
                        per_group_seconds * static_cast<double>(full_slice);
      int64_t slice = full_slice;
      if (expected <= options.full_below) {
        ++result.full_slices;
      } else if (expected <= options.half_below) {
        slice = (full_slice + 1) / 2;
        ++result.half_slices;
      } else {
        slice = (full_slice + 3) / 4;
        ++result.quarter_slices;
      }
      slice = std::max<int64_t>(1, slice);
      std::vector<int64_t> groups(
          remaining.begin() + next_group,
          remaining.begin() +
              std::min(remaining.size(), next_group + slice));
      next_group += groups.size();
      std::vector<sched::Request> reads;
      for (int64_t g : groups) {
        reads.push_back(sched::Request{g * target.group_segments(),
                                       GroupSize(target, g)});
      }
      StatusOr<sched::Schedule> schedule = (*entry)->build(
          model, position, std::move(reads), (*entry)->options);
      if (!schedule.ok()) return schedule.status();
      sim::ExecutionResult reads_result =
          sim::ExecuteSchedule(model, schedule.value());
      double slice_seconds = reads_result.total_seconds;
      position = reads_result.final_position;
      slice_seconds += WriteLegSeconds(
          model, DestinationRuns(groups, target), &position);
      clock += slice_seconds;
      result.migration_seconds += slice_seconds;
      continue;
    }
    // Idle until the next arrival.
    clock = std::max(clock, arrivals[next_arrival].time);
  }

  result.makespan_seconds = clock;
  result.migration_complete = next_group == remaining.size();
  if (!responses.empty()) {
    std::sort(responses.begin(), responses.end());
    double sum = 0.0;
    for (double r : responses) sum += r;
    result.mean_response_seconds = sum / responses.size();
    size_t p99 = static_cast<size_t>(
        std::ceil(0.99 * static_cast<double>(responses.size())));
    result.p99_response_seconds = responses[std::min(
        responses.size() - 1, p99 == 0 ? 0 : p99 - 1)];
    result.max_response_seconds = responses.back();
  }
  return result;
}

}  // namespace serpentine::layout
