#include "serpentine/layout/heat_map.h"

#include <algorithm>

#include "serpentine/sched/estimator.h"
#include "serpentine/util/check.h"

namespace serpentine::layout {

HeatMap::HeatMap(tape::SegmentId total_segments, int64_t group_segments)
    : total_(total_segments), group_segments_(group_segments) {
  SERPENTINE_CHECK_GT(total_segments, 0);
  SERPENTINE_CHECK_GT(group_segments, 0);
  heat_.assign((total_ + group_segments_ - 1) / group_segments_, 0);
}

int64_t HeatMap::group_size(int64_t group) const {
  return std::min<int64_t>(group_segments_,
                           total_ - group * group_segments_);
}

void HeatMap::RecordRequest(const sched::Request& request, int64_t weight) {
  SERPENTINE_CHECK_GE(request.segment, 0);
  tape::SegmentId last =
      std::min<tape::SegmentId>(request.segment + request.count - 1,
                                total_ - 1);
  for (int64_t g = group_of(request.segment); g <= group_of(last); ++g) {
    heat_[g] += weight;
    total_heat_ += weight;
  }
}

void HeatMap::RecordBatch(const std::vector<sched::Request>& batch) {
  if (!batch.empty()) ++batches_recorded_;
  int64_t prev_group = -1;
  for (const sched::Request& r : batch) {
    RecordRequest(r);
    int64_t g = group_of(r.segment);
    if (prev_group >= 0 && prev_group != g) {
      int64_t a = std::min(prev_group, g);
      int64_t b = std::max(prev_group, g);
      ++affinity_[a * num_groups() + b];
    }
    prev_group = g;
  }
}

void HeatMap::ObserveCompletion(const sim::ServingRequest& request,
                                double /*completion_time*/, bool ok) {
  if (!ok) return;
  ++observed_completions_;
  RecordRequest(sched::Request{request.segment, 1});
}

std::function<void(const sim::ServingRequest&, double, bool)>
HeatMap::CompletionObserver() {
  return [this](const sim::ServingRequest& r, double t, bool ok) {
    ObserveCompletion(r, t, ok);
  };
}

void HeatMap::MergeWear(const sim::WearTracker& wear) {
  if (wear_baseline_.empty()) wear_baseline_.assign(wear.bins(), 0);
  SERPENTINE_CHECK_EQ(static_cast<int>(wear_baseline_.size()), wear.bins());
  for (int i = 0; i < wear.bins(); ++i) {
    wear_baseline_[i] += wear.bin_passes(i);
  }
}

std::vector<Affinity> HeatMap::TopAffinities(size_t limit) const {
  std::vector<Affinity> edges;
  edges.reserve(affinity_.size());
  for (const auto& [key, count] : affinity_) {
    edges.push_back(Affinity{key / num_groups(), key % num_groups(), count});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Affinity& x, const Affinity& y) {
              if (x.count != y.count) return x.count > y.count;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (edges.size() > limit) edges.resize(limit);
  return edges;
}

}  // namespace serpentine::layout
