// The fleet serving layer: L libraries, each running the exact
// single-library serving engine (sim::ServingCore), fed by a replica
// router. Arrivals name *logical* segments; the catalog (catalog.h) says
// which libraries hold a copy, each candidate library bids its estimated
// service time (queue backlog + cartridge exchanges + locate-model
// estimate) and breaker state, and the router (router.h) picks — hedging
// away from libraries whose drive breaker is open.
//
// Determinism pin: a fleet of one library with one cartridge and
// replication 1 routes every request to the only replica of the identity
// catalog, so RunFleet degenerates to exactly RunOnlineServer — same
// arrival draws, same engine, same aggregation arithmetic — and the
// pinned test holds `total` equal field for field, for any thread count.
#ifndef SERPENTINE_FLEET_FLEET_SERVER_H_
#define SERPENTINE_FLEET_FLEET_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "serpentine/fleet/catalog.h"
#include "serpentine/fleet/router.h"
#include "serpentine/sim/online_server.h"
#include "serpentine/tape/locate_model.h"
#include "serpentine/util/stats.h"
#include "serpentine/util/statusor.h"

namespace serpentine::fleet {

/// A fleet as the serving layer sees it: per-library, per-cartridge locate
/// models, borrowed from the caller (who keeps them alive — see
/// UniformFleet for the common owning case).
struct Fleet {
  /// models[lib][cart] — every pointer non-null.
  std::vector<std::vector<const tape::LocateModel*>> models;

  int libraries() const { return static_cast<int>(models.size()); }
  /// Per-cartridge segment capacities, as the catalog wants them.
  FleetTopology Topology() const;
  /// True when every model tolerates concurrent readers (gates parallel
  /// replications, as in RunReplicatedOnlineServer).
  bool SupportsConcurrentUse() const;
};

/// The common fleet: L identical libraries of C cartridges each, all DLT
/// 4000 geometry from consecutive seeds (cartridge (l, c) uses seed
/// first_seed + l * C + c, the TapeLibrary idiom). Owns the models;
/// `fleet()` borrows from it.
class UniformFleet {
 public:
  UniformFleet(const tape::TapeParams& params, tape::DriveTimings timings,
               int libraries, int cartridges_per_library,
               int32_t first_seed = 1);

  UniformFleet(const UniformFleet&) = delete;
  UniformFleet& operator=(const UniformFleet&) = delete;

  const Fleet& fleet() const { return fleet_; }

 private:
  std::vector<std::unique_ptr<tape::LocateModel>> owned_;
  Fleet fleet_;
};

struct FleetConfig {
  /// The per-library serving engine's knobs (arrival process, admission,
  /// deadlines, degradation, faults, breaker). The arrival stream is drawn
  /// once, fleet-wide, over the logical segment space; the fault process is
  /// decorrelated per library (library 0 keeps the single-library stream so
  /// the determinism pin covers faulty configs too).
  sim::OnlineServerConfig serving;
  /// How logical segments were placed at ingest.
  PlacementOptions placement;
  RouterOptions router;
  /// Logical segments in the catalog; 0 (default) = the smallest
  /// library's capacity, which every placement policy can always satisfy
  /// (no library ever exceeds one replica per logical segment). For a
  /// 1-library fleet this is that library's full capacity, preserving the
  /// determinism pin.
  int64_t logical_segments = 0;
  /// Virtual seconds a cartridge exchange costs inside a library (robot +
  /// load; the single-reel rewind is charged separately by the engine).
  double mount_exchange_seconds = 0.0;
};

Status ValidateFleetConfig(const Fleet& fleet, const FleetConfig& config);

struct FleetResult {
  /// Fleet-wide totals, aggregated with the exact arithmetic of
  /// RunOnlineServer (makespan = last drive clock − first arrival;
  /// utilization = summed busy / makespan, so it can exceed 1 with several
  /// libraries — divide by libraries() for a per-drive figure). Shed
  /// records and breaker transitions concatenate in library order.
  sim::OnlineServerResult total;
  /// Each library's own results; makespan runs from the first arrival
  /// *routed there*. Libraries that served nothing report zeros.
  std::vector<sim::OnlineServerResult> per_library;

  /// Requests the router sent to each library.
  std::vector<int64_t> routed_per_library;
  /// Physical segments placed on each library at ingest.
  std::vector<int64_t> placed_per_library;
  /// Requests that skipped the score-optimal replica on an open breaker.
  int64_t failovers = 0;
  /// Cartridge switches across all libraries, and the virtual seconds they
  /// cost (rewind + exchange).
  int64_t cartridge_mounts = 0;
  double mount_seconds = 0.0;
};

/// Runs the fleet to completion: every arrival is scored against its
/// replicas, routed, and answered or shed. Fails on an invalid
/// configuration or an unplaceable catalog.
StatusOr<FleetResult> RunFleet(const Fleet& fleet, const FleetConfig& config);

/// Independent replications, thread-count invariant (replica r reseeds the
/// serving stream from DeriveRand48State(seed, r); placement stays fixed —
/// the catalog is ingest state, not a per-run draw). Parallel only when
/// every model supports concurrent use; statistics fold in replica order.
struct ReplicatedFleetStats {
  std::vector<FleetResult> results;
  Accumulator mean_response_seconds;
  Accumulator p99_response_seconds;
  Accumulator utilization;
  Accumulator throughput_per_hour;
  Accumulator shed_fraction;
  Accumulator deadline_miss_fraction;
  Accumulator failover_fraction;
};

StatusOr<ReplicatedFleetStats> RunReplicatedFleet(const Fleet& fleet,
                                                  const FleetConfig& config,
                                                  int replications,
                                                  int threads = 0);

}  // namespace serpentine::fleet

#endif  // SERPENTINE_FLEET_FLEET_SERVER_H_
