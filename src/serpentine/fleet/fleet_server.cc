#include "serpentine/fleet/fleet_server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "serpentine/obs/metrics.h"
#include "serpentine/sim/serving_core.h"
#include "serpentine/util/check.h"
#include "serpentine/util/env.h"
#include "serpentine/util/lrand48.h"
#include "serpentine/util/thread_pool.h"

namespace serpentine::fleet {
namespace {

/// Stream stride decorrelating library l's fault process: library 0 keeps
/// the single-library stream (fault_stream == serving.seed, the pin),
/// library l > 0 uses serving.seed + l * stride. Prime, and distinct from
/// the online extras stream; must never change — pinned tests depend on
/// the fault draws.
constexpr int64_t kLibraryFaultStride = 1000033;

}  // namespace

FleetTopology Fleet::Topology() const {
  FleetTopology topology;
  topology.capacity.reserve(models.size());
  for (const std::vector<const tape::LocateModel*>& lib : models) {
    std::vector<tape::SegmentId> caps;
    caps.reserve(lib.size());
    for (const tape::LocateModel* m : lib) {
      caps.push_back(m->geometry().total_segments());
    }
    topology.capacity.push_back(std::move(caps));
  }
  return topology;
}

bool Fleet::SupportsConcurrentUse() const {
  for (const std::vector<const tape::LocateModel*>& lib : models) {
    for (const tape::LocateModel* m : lib) {
      if (!m->SupportsConcurrentUse()) return false;
    }
  }
  return true;
}

UniformFleet::UniformFleet(const tape::TapeParams& params,
                           tape::DriveTimings timings, int libraries,
                           int cartridges_per_library, int32_t first_seed) {
  SERPENTINE_CHECK_GE(libraries, 1);
  SERPENTINE_CHECK_GE(cartridges_per_library, 1);
  fleet_.models.resize(libraries);
  for (int lib = 0; lib < libraries; ++lib) {
    for (int cart = 0; cart < cartridges_per_library; ++cart) {
      int32_t seed = first_seed + lib * cartridges_per_library + cart;
      owned_.push_back(std::make_unique<tape::Dlt4000LocateModel>(
          tape::TapeGeometry::Generate(params, seed), timings));
      fleet_.models[lib].push_back(owned_.back().get());
    }
  }
}

Status ValidateFleetConfig(const Fleet& fleet, const FleetConfig& config) {
  if (fleet.libraries() < 1) {
    return InvalidArgumentError("FleetConfig: fleet has no libraries");
  }
  for (int lib = 0; lib < fleet.libraries(); ++lib) {
    if (fleet.models[lib].empty()) {
      return InvalidArgumentError("FleetConfig: library " +
                                  std::to_string(lib) + " has no cartridges");
    }
    for (const tape::LocateModel* m : fleet.models[lib]) {
      if (m == nullptr) {
        return InvalidArgumentError("FleetConfig: library " +
                                    std::to_string(lib) +
                                    " holds a null model");
      }
    }
  }
  SERPENTINE_RETURN_IF_ERROR(
      sim::ValidateOnlineServerConfig(config.serving));
  SERPENTINE_RETURN_IF_ERROR(ValidateRouterOptions(config.router));
  if (config.logical_segments < 0) {
    return InvalidArgumentError(
        "FleetConfig: logical_segments must be >= 0 (0 = capacity / "
        "replication), got " +
        std::to_string(config.logical_segments));
  }
  if (!std::isfinite(config.mount_exchange_seconds) ||
      config.mount_exchange_seconds < 0.0) {
    return InvalidArgumentError(
        "FleetConfig: mount_exchange_seconds must be finite and >= 0, "
        "got " +
        std::to_string(config.mount_exchange_seconds));
  }
  // Placement knobs (replication bounds, weights) are validated by
  // Catalog::Build against the actual topology.
  return OkStatus();
}

StatusOr<FleetResult> RunFleet(const Fleet& fleet, const FleetConfig& config) {
  SERPENTINE_RETURN_IF_ERROR(ValidateFleetConfig(fleet, config));
  const int libraries = fleet.libraries();

  FleetTopology topology = fleet.Topology();
  int64_t logical = config.logical_segments;
  if (logical == 0) {
    // Default catalog: the smallest library's capacity. A library never
    // holds more than one replica per logical segment, so no library can
    // overflow and placement succeeds under every policy — unlike packing
    // to total/replication, which the distinct-library constraint can make
    // infeasible when capacities are uneven.
    logical = topology.library_segments(0);
    for (int lib = 1; lib < libraries; ++lib) {
      logical = std::min(logical, topology.library_segments(lib));
    }
  }
  SERPENTINE_ASSIGN_OR_RETURN(
      Catalog catalog, Catalog::Build(topology, logical, config.placement));

  // The fleet-wide arrival stream draws logical segments with the exact
  // generator of RunOnlineServer; with the identity catalog of a
  // 1-library / replication-1 fleet these are already physical segments.
  std::vector<sim::ServingRequest> arrivals =
      GenerateOnlineArrivals(config.serving, logical);

  std::vector<std::unique_ptr<sim::ServingCore>> cores;
  cores.reserve(libraries);
  for (int lib = 0; lib < libraries; ++lib) {
    int64_t fault_stream =
        static_cast<int64_t>(config.serving.seed) + kLibraryFaultStride * lib;
    cores.push_back(std::make_unique<sim::ServingCore>(
        fleet.models[lib], config.serving, fault_stream,
        config.mount_exchange_seconds));
  }

  Router router(&catalog, libraries, config.router);

  // First arrival routed to each library, for per-library makespans.
  constexpr double kNever = std::numeric_limits<double>::infinity();
  std::vector<double> first_routed(libraries, kNever);

  std::vector<ReplicaScore> scores;
  for (const sim::ServingRequest& a : arrivals) {
    // Every core may now advance to the arrival instant: no earlier
    // arrival can still be routed anywhere.
    for (std::unique_ptr<sim::ServingCore>& core : cores) {
      core->AdvanceInputBound(a.time);
      while (core->Step() == sim::ServingStep::kRan) {
      }
    }

    // Each replica bids: backlog the drive has already committed past the
    // arrival instant, plus the FIFO chain estimate of (queue + this
    // read), cartridge exchanges included.
    const std::vector<ReplicaLocation>& replicas = catalog.replicas(a.segment);
    scores.resize(replicas.size());
    for (size_t i = 0; i < replicas.size(); ++i) {
      const sim::ServingCore& core = *cores[replicas[i].library];
      scores[i].seconds =
          std::max(core.clock() - a.time, 0.0) +
          core.EstimateServiceSeconds(replicas[i].cartridge,
                                      replicas[i].segment);
      scores[i].breaker_open = core.breaker_open();
    }

    RouteDecision decision = router.Route(a.segment, scores);
    sim::ServingRequest routed = a;
    routed.segment = decision.location.segment;
    routed.cartridge = decision.location.cartridge;
    sim::ServingCore& target = *cores[decision.location.library];
    target.Push(routed);
    first_routed[decision.location.library] =
        std::min(first_routed[decision.location.library], a.time);
    obs::SetGauge(
        "fleet.lib" + std::to_string(decision.location.library) + ".depth",
        static_cast<double>(target.queue_depth()));
  }
  for (std::unique_ptr<sim::ServingCore>& core : cores) {
    core->FinishInput();
    while (core->Step() == sim::ServingStep::kRan) {
    }
    SERPENTINE_CHECK(core->Step() == sim::ServingStep::kDone);
    core->FinishResult();
  }

  // ---- aggregation ----
  FleetResult out;
  out.per_library.resize(libraries);
  out.routed_per_library = router.dispatches_per_library();
  out.placed_per_library = catalog.placed_per_library();
  out.failovers = router.failovers();

  std::vector<double> all_responses;
  double batch_sum = 0.0;
  double end_clock = 0.0;
  for (int lib = 0; lib < libraries; ++lib) {
    sim::ServingCore& core = *cores[lib];
    const sim::OnlineServerResult& r = core.result();

    // Per-library view: the library's own clock span.
    sim::OnlineServerResult own = r;
    std::vector<double> responses = core.responses();
    FinalizeOnlineServerResult(
        &own, &responses, core.batch_sum(), core.clock(),
        std::isfinite(first_routed[lib]) ? first_routed[lib] : core.clock());
    out.per_library[lib] = std::move(own);

    // Fleet totals: fold the raw tallies, then finalize once with the
    // single-library expressions (for one library this IS RunOnlineServer's
    // arithmetic, value for value).
    out.total.arrivals += r.arrivals;
    out.total.admitted += r.admitted;
    out.total.completed += r.completed;
    out.total.failed += r.failed;
    out.total.shed += r.shed;
    out.total.deadline_missed += r.deadline_missed;
    out.total.batches += r.batches;
    out.total.drive_busy_seconds += r.drive_busy_seconds;
    out.total.fault_retries += r.fault_retries;
    out.total.drive_resets += r.drive_resets;
    out.total.reschedules += r.reschedules;
    out.total.permanent_errors += r.permanent_errors;
    out.total.recovery_seconds += r.recovery_seconds;
    out.total.max_wait_cycles_observed = std::max(
        out.total.max_wait_cycles_observed, r.max_wait_cycles_observed);
    out.total.degraded_batches += r.degraded_batches;
    out.total.degradation_max_rung =
        std::max(out.total.degradation_max_rung, r.degradation_max_rung);
    out.total.breaker_fast_fails += r.breaker_fast_fails;
    out.total.breaker_wait_seconds += r.breaker_wait_seconds;
    out.total.breaker_transitions.insert(out.total.breaker_transitions.end(),
                                         r.breaker_transitions.begin(),
                                         r.breaker_transitions.end());
    out.total.shed_records.insert(out.total.shed_records.end(),
                                  r.shed_records.begin(),
                                  r.shed_records.end());

    all_responses.insert(all_responses.end(), core.responses().begin(),
                         core.responses().end());
    batch_sum += core.batch_sum();
    end_clock = std::max(end_clock, core.clock());
    out.cartridge_mounts += core.cartridge_mounts();
    out.mount_seconds += core.mount_seconds();
  }

  SERPENTINE_CHECK_EQ(out.total.shed + out.total.completed + out.total.failed,
                      config.serving.total_requests);
  SERPENTINE_CHECK_EQ(out.total.arrivals, config.serving.total_requests);

  FinalizeOnlineServerResult(&out.total, &all_responses, batch_sum, end_clock,
                             arrivals.empty() ? 0.0 : arrivals[0].time);
  return out;
}

StatusOr<ReplicatedFleetStats> RunReplicatedFleet(const Fleet& fleet,
                                                  const FleetConfig& config,
                                                  int replications,
                                                  int threads) {
  if (replications < 1) {
    return InvalidArgumentError(
        "RunReplicatedFleet: replications must be >= 1, got " +
        std::to_string(replications));
  }
  SERPENTINE_RETURN_IF_ERROR(ValidateFleetConfig(fleet, config));
  ReplicatedFleetStats stats;
  stats.results.resize(replications);

  // Replica r's serving seed comes from the derived stream r regardless of
  // which worker runs it; placement (ingest state) is not re-drawn.
  auto run = [&](int64_t r) {
    FleetConfig replica = config;
    replica.serving.seed = static_cast<int32_t>(
        DeriveRand48State(config.serving.seed, r) & 0x7FFFFFFF);
    StatusOr<FleetResult> result = RunFleet(fleet, replica);
    SERPENTINE_CHECK(result.ok());  // config validated above
    stats.results[r] = std::move(result).value();
  };
  int workers =
      fleet.SupportsConcurrentUse() ? ResolveThreadCount(threads) : 1;
  if (workers > 1 && replications > 1) {
    ParallelFor(&ThreadPool::Shared(), replications, workers, run);
  } else {
    for (int64_t r = 0; r < replications; ++r) run(r);
  }

  // Fold in replication order: thread-count invariant.
  for (const FleetResult& r : stats.results) {
    stats.mean_response_seconds.Add(r.total.mean_response_seconds);
    stats.p99_response_seconds.Add(r.total.p99_response_seconds);
    stats.utilization.Add(r.total.utilization);
    stats.throughput_per_hour.Add(r.total.throughput_per_hour);
    stats.shed_fraction.Add(r.total.arrivals > 0
                                ? static_cast<double>(r.total.shed) /
                                      r.total.arrivals
                                : 0.0);
    stats.deadline_miss_fraction.Add(
        r.total.admitted > 0
            ? static_cast<double>(r.total.deadline_missed) / r.total.admitted
            : 0.0);
    stats.failover_fraction.Add(
        r.total.arrivals > 0
            ? static_cast<double>(r.failovers) / r.total.arrivals
            : 0.0);
  }
  return stats;
}

}  // namespace serpentine::fleet
