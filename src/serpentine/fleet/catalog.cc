#include "serpentine/fleet/catalog.h"

#include <cmath>
#include <string>

#include "serpentine/util/check.h"
#include "serpentine/util/lrand48.h"
#include "serpentine/util/status.h"

namespace serpentine::fleet {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kRandom:
      return "random";
    case PlacementPolicy::kWeighted:
      return "weighted";
  }
  return "unknown";
}

serpentine::StatusOr<PlacementPolicy> PlacementPolicyFromString(
    std::string_view name) {
  if (name == "round-robin" || name == "roundrobin") {
    return PlacementPolicy::kRoundRobin;
  }
  if (name == "random") return PlacementPolicy::kRandom;
  if (name == "weighted") return PlacementPolicy::kWeighted;
  return InvalidArgumentError(
      "unknown placement policy '" + std::string(name) +
      "' (expected round-robin, random, or weighted)");
}

int64_t FleetTopology::library_segments(int library) const {
  int64_t total = 0;
  for (tape::SegmentId c : capacity[library]) total += c;
  return total;
}

int64_t FleetTopology::total_segments() const {
  int64_t total = 0;
  for (int lib = 0; lib < libraries(); ++lib) total += library_segments(lib);
  return total;
}

namespace {

/// Sequential fill cursor of one library: next free (cartridge, segment).
struct FillCursor {
  int cartridge = 0;
  tape::SegmentId segment = 0;
  int64_t remaining = 0;
};

}  // namespace

serpentine::StatusOr<Catalog> Catalog::Build(const FleetTopology& topology,
                                             int64_t logical_segments,
                                             const PlacementOptions& options) {
  const int libraries = topology.libraries();
  if (libraries < 1) {
    return InvalidArgumentError("Catalog: topology has no libraries");
  }
  for (int lib = 0; lib < libraries; ++lib) {
    if (topology.cartridges(lib) < 1) {
      return InvalidArgumentError("Catalog: library " + std::to_string(lib) +
                                  " has no cartridges");
    }
    for (tape::SegmentId c : topology.capacity[lib]) {
      if (c < 1) {
        return InvalidArgumentError(
            "Catalog: library " + std::to_string(lib) +
            " has a cartridge with non-positive capacity");
      }
    }
  }
  if (logical_segments < 1) {
    return InvalidArgumentError(
        "Catalog: logical_segments must be >= 1, got " +
        std::to_string(logical_segments));
  }
  if (options.replication < 1 || options.replication > libraries) {
    return InvalidArgumentError(
        "Catalog: replication " + std::to_string(options.replication) +
        " must be in [1, " + std::to_string(libraries) +
        "] (replicas live on distinct libraries)");
  }
  if (!options.weights.empty() &&
      static_cast<int>(options.weights.size()) != libraries) {
    return InvalidArgumentError(
        "Catalog: " + std::to_string(options.weights.size()) +
        " weights for " + std::to_string(libraries) + " libraries");
  }
  double weight_sum = 0.0;
  for (double w : options.weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return InvalidArgumentError(
          "Catalog: weights must be finite and >= 0, got " +
          std::to_string(w));
    }
    weight_sum += w;
  }
  if (!options.weights.empty() && weight_sum <= 0.0) {
    return InvalidArgumentError(
        "Catalog: placement weights sum to zero — weighted placement needs "
        "at least one library with positive weight (got " +
        std::to_string(options.weights.size()) + " all-zero weights)");
  }
  if (logical_segments * options.replication > topology.total_segments()) {
    return ResourceExhaustedError(
        "Catalog: " + std::to_string(logical_segments) + " segments x " +
        std::to_string(options.replication) + " replicas exceed fleet "
        "capacity " +
        std::to_string(topology.total_segments()));
  }

  std::vector<FillCursor> cursors(libraries);
  for (int lib = 0; lib < libraries; ++lib) {
    cursors[lib].remaining = topology.library_segments(lib);
  }

  Lrand48 rng(options.seed);

  Catalog catalog;
  catalog.replication_ = options.replication;
  catalog.replicas_.resize(logical_segments);
  catalog.placed_per_library_.assign(libraries, 0);

  std::vector<int> chosen;
  chosen.reserve(options.replication);
  std::vector<int> candidates;
  candidates.reserve(libraries);
  for (int64_t logical = 0; logical < logical_segments; ++logical) {
    chosen.clear();
    for (int r = 0; r < options.replication; ++r) {
      // Candidates: non-full libraries not already holding this segment.
      candidates.clear();
      for (int lib = 0; lib < libraries; ++lib) {
        if (cursors[lib].remaining <= 0) continue;
        bool taken = false;
        for (int c : chosen) taken = taken || (c == lib);
        if (!taken) candidates.push_back(lib);
      }
      if (candidates.empty()) {
        return ResourceExhaustedError(
            "Catalog: ran out of distinct libraries with free capacity at "
            "logical segment " +
            std::to_string(logical) + " replica " + std::to_string(r));
      }
      int pick = candidates[0];
      switch (options.policy) {
        case PlacementPolicy::kRoundRobin: {
          // (logical + r) mod L, advanced past full/taken libraries.
          int want = static_cast<int>((logical + r) % libraries);
          pick = candidates[0];
          for (int step = 0; step < libraries; ++step) {
            int lib = (want + step) % libraries;
            bool ok = false;
            for (int c : candidates) ok = ok || (c == lib);
            if (ok) {
              pick = lib;
              break;
            }
          }
          break;
        }
        case PlacementPolicy::kRandom: {
          pick = candidates[rng.NextBounded(
              static_cast<int64_t>(candidates.size()))];
          break;
        }
        case PlacementPolicy::kWeighted: {
          // Weighted draw over the candidates (uniform when no weights).
          double total = 0.0;
          for (int lib : candidates) {
            total += options.weights.empty() ? 1.0 : options.weights[lib];
          }
          if (total <= 0.0) {
            // Every candidate has zero weight; fall back to uniform so a
            // replica still lands somewhere legal.
            pick = candidates[rng.NextBounded(
                static_cast<int64_t>(candidates.size()))];
            break;
          }
          double u = rng.NextDouble() * total;
          double prefix = 0.0;
          pick = candidates.back();
          for (int lib : candidates) {
            prefix += options.weights.empty() ? 1.0 : options.weights[lib];
            if (u < prefix) {
              pick = lib;
              break;
            }
          }
          break;
        }
      }
      chosen.push_back(pick);

      FillCursor& cur = cursors[pick];
      SERPENTINE_CHECK_GT(cur.remaining, int64_t{0});
      ReplicaLocation loc;
      loc.library = pick;
      loc.cartridge = cur.cartridge;
      loc.segment = cur.segment;
      catalog.replicas_[logical].push_back(loc);
      ++catalog.placed_per_library_[pick];
      // Advance the sequential fill cursor.
      --cur.remaining;
      ++cur.segment;
      if (cur.segment >= topology.capacity[pick][cur.cartridge]) {
        ++cur.cartridge;
        cur.segment = 0;
      }
    }
  }
  return catalog;
}

}  // namespace serpentine::fleet
