#include "serpentine/fleet/router.h"

#include "serpentine/obs/metrics.h"
#include "serpentine/util/check.h"

namespace serpentine::fleet {

Status ValidateRouterOptions(const RouterOptions& options) {
  (void)options;  // every setting of the single knob is valid today
  return OkStatus();
}

Router::Router(const Catalog* catalog, int libraries, RouterOptions options)
    : catalog_(catalog), options_(options) {
  SERPENTINE_CHECK(catalog != nullptr);
  SERPENTINE_CHECK_GE(libraries, 1);
  dispatches_per_library_.assign(libraries, 0);
}

RouteDecision Router::Route(int64_t logical,
                            const std::vector<ReplicaScore>& scores) {
  const std::vector<ReplicaLocation>& replicas = catalog_->replicas(logical);
  SERPENTINE_CHECK_EQ(scores.size(), replicas.size());
  SERPENTINE_CHECK(!scores.empty());

  // Two argmins in one pass: the best replica overall and the best healthy
  // one. Strict `<` keeps ties on the lowest replica index.
  int best = -1;
  int best_healthy = -1;
  for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
    if (best < 0 || scores[i].seconds < scores[best].seconds) best = i;
    if (!scores[i].breaker_open &&
        (best_healthy < 0 ||
         scores[i].seconds < scores[best_healthy].seconds)) {
      best_healthy = i;
    }
  }

  RouteDecision decision;
  if (options_.failover_on_open_breaker && best_healthy >= 0) {
    decision.replica = best_healthy;
    // A failover is only the hedge case: the overall winner was refused on
    // breaker state. When the winner is itself healthy the two argmins
    // coincide and nothing was skipped.
    decision.failover = scores[best].breaker_open;
  } else {
    // Breaker-blind routing, or every replica is behind an open breaker —
    // someone has to take the request; the cheapest queue eats it.
    decision.replica = best;
  }
  decision.location = replicas[decision.replica];
  decision.score_seconds = scores[decision.replica].seconds;

  ++dispatches_;
  ++dispatches_per_library_[decision.location.library];
  obs::IncrementCounter("fleet.router.dispatches");
  if (decision.failover) {
    ++failovers_;
    obs::IncrementCounter("fleet.router.failovers");
  }
  return decision;
}

}  // namespace serpentine::fleet
