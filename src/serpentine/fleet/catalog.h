// The fleet catalog: where every logical segment's replicas live. The
// single-library stack addresses physical segments directly; a fleet
// (ROADMAP item 2, TALICS³ direction) needs one more level of naming —
// a logical segment maps to R physical (library, cartridge, segment)
// locations, placed at ingest by a policy and chosen at read time by the
// router (router.h) on estimated service time.
#ifndef SERPENTINE_FLEET_CATALOG_H_
#define SERPENTINE_FLEET_CATALOG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "serpentine/tape/locate_model.h"
#include "serpentine/util/statusor.h"

namespace serpentine::fleet {

/// One physical copy of a logical segment.
struct ReplicaLocation {
  int library = 0;
  int cartridge = 0;
  tape::SegmentId segment = 0;

  bool operator==(const ReplicaLocation&) const = default;
};

/// How ingest spreads replicas across libraries.
enum class PlacementPolicy {
  /// Library (i + r) mod L for logical segment i, replica r: perfectly
  /// balanced, zero randomness, the determinism-pin default.
  kRoundRobin = 0,
  /// Seeded uniform draws over the non-full libraries.
  kRandom = 1,
  /// Seeded draws weighted by per-library weights (capacity, geography,
  /// measured load — the EOS-scheduler knob); uniform when no weights are
  /// given.
  kWeighted = 2,
};

/// Stable lowercase name ("round-robin", "random", "weighted").
const char* PlacementPolicyName(PlacementPolicy policy);

/// Inverse of PlacementPolicyName; InvalidArgument (listing the valid
/// names) for anything else. The single parsing point for CLI flags and
/// bench labels.
serpentine::StatusOr<PlacementPolicy> PlacementPolicyFromString(
    std::string_view name);

/// Physical shape of a fleet: per-library, per-cartridge segment
/// capacities.
struct FleetTopology {
  /// capacity[lib][cart] = segments on that cartridge.
  std::vector<std::vector<tape::SegmentId>> capacity;

  int libraries() const { return static_cast<int>(capacity.size()); }
  int cartridges(int library) const {
    return static_cast<int>(capacity[library].size());
  }
  int64_t library_segments(int library) const;
  int64_t total_segments() const;
};

struct PlacementOptions {
  PlacementPolicy policy = PlacementPolicy::kRoundRobin;
  /// Copies per logical segment, on distinct libraries.
  int replication = 1;
  /// Per-library weights for kWeighted; empty = uniform. Must be finite,
  /// >= 0, with a positive sum, and either empty or one per library.
  std::vector<double> weights;
  /// Seed of the placement rand48 stream (kRandom / kWeighted only;
  /// kRoundRobin draws nothing).
  int32_t seed = 1;
};

/// The logical → physical mapping, built once at ingest and immutable
/// afterwards (safe to share across replicated runs and threads).
///
/// Within each library, placement fills cartridges sequentially (cartridge
/// 0 segment 0 upward), so a 1-library / replication-1 catalog is the
/// identity mapping — logical segment i IS physical segment i — which is
/// what lets a 1-library fleet reproduce the single-library OnlineServer
/// stream bit for bit.
class Catalog {
 public:
  /// Places `logical_segments` segments × replication replicas onto the
  /// topology. Fails with InvalidArgument on an impossible request
  /// (replication > libraries, bad weights) and ResourceExhausted when
  /// capacity runs out under the distinct-library constraint.
  static serpentine::StatusOr<Catalog> Build(const FleetTopology& topology,
                                             int64_t logical_segments,
                                             const PlacementOptions& options);

  int64_t num_logical() const {
    return static_cast<int64_t>(replicas_.size());
  }
  int replication() const { return replication_; }

  /// The replicas of `logical`, in placement order (replica 0 first).
  const std::vector<ReplicaLocation>& replicas(int64_t logical) const {
    return replicas_[logical];
  }

  /// Physical segments placed on each library (placement-balance metric).
  const std::vector<int64_t>& placed_per_library() const {
    return placed_per_library_;
  }

 private:
  std::vector<std::vector<ReplicaLocation>> replicas_;
  std::vector<int64_t> placed_per_library_;
  int replication_ = 1;
};

}  // namespace serpentine::fleet

#endif  // SERPENTINE_FLEET_CATALOG_H_
