// The replica router: which copy of a logical segment serves a read. Each
// replica is scored by its library's estimated service time (queue wait +
// cartridge exchanges + sched::Estimator locate/read bound — see
// sim::ServingCore::EstimateServiceSeconds) and by its library's breaker
// state. The router picks the cheapest healthy replica; when the cheapest
// replica overall sits behind an open breaker it hedges — fails over to
// the best healthy one and counts the event — rather than queueing work on
// a drive that is refusing it.
//
// The router itself is pure arithmetic over the scores the caller
// provides; it never touches a clock or a drive, which keeps it trivially
// deterministic and unit-testable.
#ifndef SERPENTINE_FLEET_ROUTER_H_
#define SERPENTINE_FLEET_ROUTER_H_

#include <cstdint>
#include <vector>

#include "serpentine/fleet/catalog.h"
#include "serpentine/util/status.h"

namespace serpentine::fleet {

/// One replica's bid for a request, in the same order as
/// Catalog::replicas(logical).
struct ReplicaScore {
  /// Estimated seconds until the candidate read completes on that
  /// replica's library (from the request's arrival instant).
  double seconds = 0.0;
  /// True when that library's drive breaker is open (work would be refused
  /// or stalled behind a cooldown).
  bool breaker_open = false;
};

struct RouterOptions {
  /// When true (default), a replica behind an open breaker loses to any
  /// healthy replica regardless of score; the router falls back to pure
  /// score order only when every replica's breaker is open. When false,
  /// breaker state is ignored and the cheapest replica always wins.
  bool failover_on_open_breaker = true;
};

Status ValidateRouterOptions(const RouterOptions& options);

/// The outcome of routing one request.
struct RouteDecision {
  /// Index into Catalog::replicas(logical).
  int replica = 0;
  ReplicaLocation location;
  /// The chosen replica's score.
  double score_seconds = 0.0;
  /// True when the score-optimal replica was skipped because its breaker
  /// was open (hedged failover).
  bool failover = false;
};

/// Scores → decision, with per-library dispatch counters. Borrows the
/// catalog (which is immutable after Build).
class Router {
 public:
  Router(const Catalog* catalog, int libraries, RouterOptions options = {});

  /// Routes logical segment `logical` given one score per replica (same
  /// order as catalog->replicas(logical); sizes must match). Ties on
  /// seconds break toward the lower replica index, so equal-cost fleets
  /// route deterministically.
  RouteDecision Route(int64_t logical, const std::vector<ReplicaScore>& scores);

  // ---- lifetime counters ----
  int64_t dispatches() const { return dispatches_; }
  /// Requests that skipped the score-optimal replica on an open breaker.
  int64_t failovers() const { return failovers_; }
  const std::vector<int64_t>& dispatches_per_library() const {
    return dispatches_per_library_;
  }

 private:
  const Catalog* catalog_;
  RouterOptions options_;
  int64_t dispatches_ = 0;
  int64_t failovers_ = 0;
  std::vector<int64_t> dispatches_per_library_;
};

}  // namespace serpentine::fleet

#endif  // SERPENTINE_FLEET_ROUTER_H_
