#!/usr/bin/env sh
# CI entry point: build and test under each sanitizer configuration.
#
#   tools/ci.sh [plain|address|thread ...]
#
# With no arguments runs all three configurations in order. Each
# configuration gets its own build tree (build-ci-<name>) so sanitizer
# and plain objects never mix. Fails on the first configuration whose
# build or test suite fails.
#
# The thread-sanitizer pass is the one that vets the parallel experiment
# engine (ParallelFor / ShardCount); the address pass catches lifetime
# bugs in the fault-injection and recovery paths, which exercise
# rescheduling mid-batch.
#
# When clang-tidy is on PATH, a lint pass (modernize + bugprone) runs
# first over the drive and scheduler layers; it is skipped silently-ish
# on machines without clang-tidy so the sanitizer passes stay runnable
# everywhere.
set -eu

CONFIGS="${*:-plain address thread}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== lint: clang-tidy over src/serpentine/drive/ and sched/ =="
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_dir="build-ci-tidy"
  cmake -B "$tidy_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  clang-tidy -p "$tidy_dir" \
    --checks='-*,modernize-*,bugprone-*,-modernize-use-trailing-return-type' \
    --warnings-as-errors='bugprone-*' \
    src/serpentine/drive/*.cc src/serpentine/sched/*.cc
  echo "== lint: OK =="
else
  echo "clang-tidy not on PATH; skipping the lint pass"
fi

echo "== docs lint: intra-repo links + README coverage =="
docs_fail=0
# Every intra-repo markdown link in README.md and docs/*.md must resolve
# (relative to the linking file, with a repo-root fallback).
for md in README.md docs/*.md; do
  [ -f "$md" ] || continue
  md_dir=$(dirname "$md")
  for link in $(grep -o '](\([^)]*\))' "$md" | sed 's/^](//;s/)$//'); do
    case "$link" in
      http://*|https://*|mailto:*|"#"*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$md_dir/$target" ] && [ ! -e "$target" ]; then
      echo "error: $md links to missing file: $link" >&2
      docs_fail=1
    fi
  done
done
# Every docs page must be reachable from the README's docs index.
for doc in docs/*.md; do
  [ -f "$doc" ] || continue
  if ! grep -q "$(basename "$doc")" README.md; then
    echo "error: README.md does not reference $doc" >&2
    docs_fail=1
  fi
done
# Every source layer must be documented: each directory under
# src/serpentine/ must be named (as "<layer>/") in some docs page, so a
# new layer cannot land without the docs knowing it exists.
for dir in src/serpentine/*/; do
  layer=$(basename "$dir")
  if ! grep -q "${layer}/" docs/*.md; then
    echo "error: no docs/*.md mentions source layer ${layer}/" >&2
    docs_fail=1
  fi
done
if [ "$docs_fail" -ne 0 ]; then
  echo "== docs lint: FAILED ==" >&2
  exit 1
fi
echo "== docs lint: OK =="

for config in $CONFIGS; do
  case "$config" in
    plain)   sanitize="" ;;
    address) sanitize="address" ;;
    thread)  sanitize="thread" ;;
    *)
      echo "error: unknown configuration '$config'" \
           "(expected plain, address, or thread)" >&2
      exit 2
      ;;
  esac

  build_dir="build-ci-$config"
  echo "== $config: configure ($build_dir) =="
  cmake -B "$build_dir" -S . -DSERPENTINE_SANITIZE="$sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "== $config: build =="
  cmake --build "$build_dir" -j "$JOBS"
  echo "== $config: test =="
  (cd "$build_dir" && ctest --output-on-failure -j "$JOBS")
  echo "== $config: OK =="

  # Perf smoke, on the unsanitized release build only: one 10k-request
  # construction sweep (sched_scale exits nonzero on crash, NaN estimates,
  # dropped requests, or sweep/incremental Or-opt divergence), then a
  # schema check over the timing records it emitted.
  if [ "$config" = "plain" ]; then
    echo "== perf smoke: sched_scale --max-n=10000 ($build_dir) =="
    smoke_json="$build_dir/perf_smoke_sched_cpu.json"
    rm -f "$smoke_json"
    SERPENTINE_BENCH_JSON="$smoke_json" \
      "$build_dir/bench/sched_scale" --max-n=10000
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/validate_bench_json.py "$smoke_json"
    else
      echo "python3 not on PATH; skipping the bench JSON schema check"
    fi
    echo "== perf smoke: OK =="

    # Overload smoke: the admission/deadline/breaker sweep at smoke scale
    # (exits nonzero on conservation violations, OK-status sheds, or an
    # unbounded admitted p99), plus the schema check over its records.
    echo "== overload smoke: overload_sweep ($build_dir) =="
    overload_json="$build_dir/overload_smoke.json"
    rm -f "$overload_json"
    SERPENTINE_SCALE=smoke SERPENTINE_BENCH_JSON="$overload_json" \
      "$build_dir/bench/overload_sweep" > /dev/null
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/validate_bench_json.py "$overload_json"
    else
      echo "python3 not on PATH; skipping the bench JSON schema check"
    fi
    echo "== overload smoke: OK =="

    # Fleet smoke: the multi-library router sweep at smoke scale (exits
    # nonzero on conservation/balance violations or on the 1-library
    # determinism pin breaking), plus the schema check over its records.
    echo "== fleet smoke: fleet_sweep ($build_dir) =="
    fleet_json="$build_dir/fleet_smoke.json"
    rm -f "$fleet_json"
    SERPENTINE_SCALE=smoke SERPENTINE_BENCH_JSON="$fleet_json" \
      "$build_dir/bench/fleet_sweep" > /dev/null
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/validate_bench_json.py "$fleet_json"
    else
      echo "python3 not on PATH; skipping the bench JSON schema check"
    fi
    echo "== fleet smoke: OK =="

    # Stress smoke: the open-loop multi-tenant harness at smoke scale
    # (~2k requests per point; exits nonzero on conservation violations,
    # non-finite or out-of-order quantiles, or a missing latency knee),
    # plus the schema check over its records.
    echo "== stress smoke: stress ($build_dir) =="
    stress_json="$build_dir/stress_smoke.json"
    rm -f "$stress_json"
    SERPENTINE_SCALE=smoke SERPENTINE_BENCH_JSON="$stress_json" \
      "$build_dir/bench/stress" > /dev/null
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/validate_bench_json.py "$stress_json"
    else
      echo "python3 not on PATH; skipping the bench JSON schema check"
    fi
    echo "== stress smoke: OK =="

    # Placement smoke: the layout-loop bench (exits nonzero unless the
    # optimized layout strictly improves BOTH makespan and media life on
    # the skewed evaluation workload, and the interleaved migration
    # finishes), plus the schema check over its records.
    echo "== placement smoke: placement_sweep ($build_dir) =="
    placement_json="$build_dir/placement_smoke.json"
    rm -f "$placement_json"
    SERPENTINE_SCALE=smoke SERPENTINE_BENCH_JSON="$placement_json" \
      "$build_dir/bench/placement_sweep" > /dev/null
    if command -v python3 >/dev/null 2>&1; then
      python3 tools/validate_bench_json.py "$placement_json"
    else
      echo "python3 not on PATH; skipping the bench JSON schema check"
    fi
    echo "== placement smoke: OK =="
  fi
done

echo "all configurations passed: $CONFIGS"
