#!/usr/bin/env sh
# Runs the timing-sensitive benches with machine-readable output.
#
#   tools/run_benches.sh [build-dir] [out-dir]
#
# fig6 (google-benchmark scheduling CPU) writes its native JSON via
# --benchmark_out; the simulation figures (fig7 here; fig4/fig5 and
# table_summary understand the same variable) append JSONL timing records
# via SERPENTINE_BENCH_JSON. Rerun with different SERPENTINE_THREADS
# values and diff the printed tables: they must match bit for bit, only
# wall_seconds may move (see docs/performance.md).
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [ ! -x "$BUILD_DIR/bench/fig6_scheduling_cpu" ]; then
  echo "error: $BUILD_DIR/bench/fig6_scheduling_cpu not found;" \
       "build first (cmake -B $BUILD_DIR && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

echo "== fig6: scheduling CPU (google-benchmark) =="
"$BUILD_DIR/bench/fig6_scheduling_cpu" \
  --benchmark_out="$OUT_DIR/BENCH_sched.json" \
  --benchmark_out_format=json

echo
echo "== sched_scale: construction wall-clock at 1k..100k requests =="
# Fresh file per run (TimingRecorder appends); validated below. Set
# SERPENTINE_BENCH_LARGE=1 to also extend fig6 above into the 100k regime.
rm -f "$OUT_DIR/BENCH_sched_cpu.json"
SERPENTINE_BENCH_JSON="$OUT_DIR/BENCH_sched_cpu.json" \
  "$BUILD_DIR/bench/sched_scale"
if command -v python3 >/dev/null 2>&1; then
  python3 "$(dirname "$0")/validate_bench_json.py" \
    "$OUT_DIR/BENCH_sched_cpu.json"
else
  echo "python3 not on PATH; skipping BENCH_sched_cpu.json validation"
fi

echo
echo "== fig7: utilization (simulation timings to JSONL) =="
SERPENTINE_BENCH_JSON="$OUT_DIR/BENCH_sim.jsonl" \
  "$BUILD_DIR/bench/fig7_utilization"

echo
echo "== fault sweep: smoke (robustness; exits nonzero on accounting" \
     "violations) =="
SERPENTINE_SCALE=smoke "$BUILD_DIR/bench/fault_sweep" \
  > "$OUT_DIR/BENCH_fault_sweep.txt"
tail -n 2 "$OUT_DIR/BENCH_fault_sweep.txt"

echo
echo "== overload sweep: admission/deadline/breaker past saturation" \
     "(exits nonzero on invariant violations) =="
rm -f "$OUT_DIR/BENCH_overload.json"
SERPENTINE_BENCH_JSON="$OUT_DIR/BENCH_overload.json" \
  "$BUILD_DIR/bench/overload_sweep" > "$OUT_DIR/BENCH_overload.txt"
tail -n 2 "$OUT_DIR/BENCH_overload.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 "$(dirname "$0")/validate_bench_json.py" \
    "$OUT_DIR/BENCH_overload.json"
else
  echo "python3 not on PATH; skipping BENCH_overload.json validation"
fi

echo
echo "== fleet sweep: libraries x replication x placement through the" \
     "replica router (exits nonzero on invariant violations) =="
rm -f "$OUT_DIR/BENCH_fleet.json"
SERPENTINE_BENCH_JSON="$OUT_DIR/BENCH_fleet.json" \
  "$BUILD_DIR/bench/fleet_sweep" > "$OUT_DIR/BENCH_fleet.txt"
tail -n 2 "$OUT_DIR/BENCH_fleet.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 "$(dirname "$0")/validate_bench_json.py" \
    "$OUT_DIR/BENCH_fleet.json"
else
  echo "python3 not on PATH; skipping BENCH_fleet.json validation"
fi

echo
echo "== stress: open-loop million-request harness with tail-latency SLOs" \
     "(exits nonzero on invariant violations) =="
# Full scale is the 1M-request acceptance run; default here keeps the
# sweep to ~50k requests per point. SERPENTINE_SCALE=full to reproduce
# the paper-scale knee.
rm -f "$OUT_DIR/BENCH_stress.json"
SERPENTINE_BENCH_JSON="$OUT_DIR/BENCH_stress.json" \
  "$BUILD_DIR/bench/stress" > "$OUT_DIR/BENCH_stress.txt"
tail -n 2 "$OUT_DIR/BENCH_stress.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 "$(dirname "$0")/validate_bench_json.py" \
    "$OUT_DIR/BENCH_stress.json"
else
  echo "python3 not on PATH; skipping BENCH_stress.json validation"
fi

echo
echo "== placement: workload-aware layout vs the seed =="
# The layout loop end to end: heat capture, tail-anchored optimization,
# seed-vs-optimized evaluation (the bench exits nonzero unless the
# optimized layout strictly improves BOTH makespan and media life), and
# migration cost. SERPENTINE_SCALE=full lengthens the evaluation horizon.
rm -f "$OUT_DIR/BENCH_placement.json"
SERPENTINE_BENCH_JSON="$OUT_DIR/BENCH_placement.json" \
  "$BUILD_DIR/bench/placement_sweep" > "$OUT_DIR/BENCH_placement.txt"
tail -n 1 "$OUT_DIR/BENCH_placement.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 "$(dirname "$0")/validate_bench_json.py" \
    "$OUT_DIR/BENCH_placement.json"
else
  echo "python3 not on PATH; skipping BENCH_placement.json validation"
fi

echo
echo "== drive ops: MeteredDrive op counts per algorithm =="
# This run doubles as the observability sample: one Chrome trace_event
# timeline and one metrics snapshot (see docs/observability.md).
SERPENTINE_DRIVE_JSON="$OUT_DIR/BENCH_drive_ops.json" \
SERPENTINE_TRACE="$OUT_DIR/BENCH_trace.json" \
SERPENTINE_METRICS_JSON="$OUT_DIR/BENCH_metrics.json" \
  "$BUILD_DIR/bench/drive_metrics"

echo
echo "wrote $OUT_DIR/BENCH_sched.json, $OUT_DIR/BENCH_sched_cpu.json," \
     "$OUT_DIR/BENCH_sim.jsonl," \
     "$OUT_DIR/BENCH_fault_sweep.txt, $OUT_DIR/BENCH_overload.json," \
     "$OUT_DIR/BENCH_stress.json, $OUT_DIR/BENCH_placement.json," \
     "$OUT_DIR/BENCH_drive_ops.json," \
     "$OUT_DIR/BENCH_trace.json, and $OUT_DIR/BENCH_metrics.json" \
     "(threads: ${SERPENTINE_THREADS:-auto}, scale: ${SERPENTINE_SCALE:-default})"
