#!/usr/bin/env python3
"""Schema check for SERPENTINE_BENCH_JSON timing records.

    tools/validate_bench_json.py FILE [FILE ...]

Each file is JSONL as written by bench::TimingRecorder: one JSON object
per line with figure/label (strings), n/trials/threads (non-negative
integers), wall_seconds (finite, non-negative number), and scale
(string). Exits nonzero, naming the offending file and line, when a line
fails to parse, a key is missing or mistyped, or a number is NaN/inf —
the cheap tripwire ci.sh and run_benches.sh run over every emitted
timing file.
"""
import json
import math
import sys

REQUIRED = {
    "figure": str,
    "label": str,
    "n": int,
    "trials": int,
    "wall_seconds": (int, float),
    "threads": int,
    "scale": str,
}

# Figure-specific extras: records whose "figure" appears here must also
# carry these keys (numbers finite and non-negative, same rules as the
# base schema). Benches remain free to emit further keys beyond these.
FIGURE_REQUIRED = {
    "fleet": {
        "libraries": int,
        "replication": int,
        "placement": str,
        "p99_response_seconds": (int, float),
        "utilization": (int, float),
        "failovers": int,
        "cartridge_mounts": int,
        "mount_seconds": (int, float),
    },
    "fleet-robot": {
        "drives": int,
        "robot_exchanges": int,
        "robot_wait_seconds": (int, float),
        "busy_seconds": (int, float),
    },
    "placement": {
        "workload": str,
        "makespan_seconds": (int, float),
        "life_consumed": (int, float),
        "max_passes": int,
        "tape_lengths": (int, float),
    },
    "placement-migration": {
        "batches": int,
        "segments_moved": int,
        "migration_seconds": (int, float),
        "foreground_p99_seconds": (int, float),
    },
    "stress": {
        "process": str,
        "tenants": int,
        "offered_rate_per_hour": (int, float),
        "throughput_per_hour": (int, float),
        "p50_response_seconds": (int, float),
        "p95_response_seconds": (int, float),
        "p99_response_seconds": (int, float),
        "p999_response_seconds": (int, float),
        "max_response_seconds": (int, float),
        "shed_rate": (int, float),
        "cache_hit_rate": (int, float),
        "coalesced_rate": (int, float),
        "utilization": (int, float),
        "fairness_jain": (int, float),
    },
}


def check_keys(record, schema):
    """Returns an error string, or None when every schema key conforms."""
    for key, want in schema.items():
        if key not in record:
            return f"missing key {key!r}"
        value = record[key]
        # bool is an int subclass; a true/false count is always a bug.
        if isinstance(value, bool) or not isinstance(value, want):
            return f"key {key!r} has type {type(value).__name__}"
        if isinstance(value, (int, float)) and not isinstance(value, str):
            if isinstance(value, float) and not math.isfinite(value):
                return f"key {key!r} is not finite: {value!r}"
            if value < 0:
                return f"key {key!r} is negative: {value!r}"
    return None


def validate_record(record):
    """Returns an error string, or None when the record conforms."""
    if not isinstance(record, dict):
        return "record is not a JSON object"
    problem = check_keys(record, REQUIRED)
    if problem is not None:
        return problem
    extras = FIGURE_REQUIRED.get(record["figure"])
    if extras is not None and record["label"] != "_total":
        return check_keys(record, extras)
    return None


def validate_file(path):
    errors = 0
    records = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"{path}:{lineno}: unparseable JSON: {e}",
                      file=sys.stderr)
                errors += 1
                continue
            problem = validate_record(record)
            if problem is not None:
                print(f"{path}:{lineno}: {problem}", file=sys.stderr)
                errors += 1
            else:
                records += 1
    if records == 0 and errors == 0:
        print(f"{path}: no records", file=sys.stderr)
        errors += 1
    return records, errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total_records = 0
    total_errors = 0
    for path in argv[1:]:
        records, errors = validate_file(path)
        total_records += records
        total_errors += errors
    if total_errors:
        print(f"validate_bench_json: {total_errors} error(s)",
              file=sys.stderr)
        return 1
    print(f"validate_bench_json: {total_records} record(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
