// serpsched: command-line serpentine tape schedule planner.
//
//   serpsched [options] [segment ...]
//
// Reads a batch of segment numbers (arguments, --stdin, or --random=N),
// schedules it with the chosen algorithm against a simulated cartridge,
// and prints the service order with per-step locate estimates plus a
// comparison against FIFO service.
//
// Options:
//   --algorithm=NAME   any registered scheduler (default loss):
//                      read|fifo|sort|opt|sltf|scan|weave|loss|sparse-loss
//                      plus variants loss-coalesced, sltf-naive
//                      (see sched/registry.h)
//   --drive=NAME       dlt4000|dlt7000|ibm3590 (default dlt4000)
//   --tape-seed=N      cartridge identity (default 1)
//   --initial=SEG      starting head position (default 0 = BOT)
//   --random=N         generate N uniform random requests (--seed=N)
//   --stdin            read one segment number per line from stdin
//   --workload=FILE    load requests from a workload trace file (see
//                      workload/trace_io.h for the format)
//   --improve          apply Or-opt local search to the schedule
//   --rewind           charge a rewind after the last read
//   --explain          show each locate's model case and scan/read split
//   --quiet            print only the summary
//   --fault-profile=P  execute the schedule under fault injection and
//                      report recovery accounting. P is none|light|heavy
//                      or a key=value profile file (see
//                      sim/fault_injector.h); "none" still runs the
//                      recovering executor and must match the estimate.
//   --fault-seed=N     fault stream seed (default: the profile's seed)
//   --trace=FILE       execute the schedule and write a Chrome trace_event
//                      JSON timeline (open in chrome://tracing or
//                      https://ui.perfetto.dev; see docs/observability.md)
//   --metrics-json=FILE execute the schedule and write a metrics snapshot
//                      (counters/gauges/histograms) as JSON
//   --pipeline=N       split the batch into N arrival-order sub-batches and
//                      run them through the pipelined compute/execute
//                      runner (sim/pipeline.h): batch k+1's schedule is
//                      built while batch k executes, and the summary
//                      reports how much scheduling CPU the overlap hides.
//                      Combine with --trace to see the dual-clock overlap.
//   --online-rate=R    run an online-serving pass (sim/online_server.h):
//                      the same number of requests arriving Poisson at R
//                      per hour, served by the chosen algorithm, with the
//                      summary reporting shed/completed/failed counts and
//                      the p99 response. Honors --fault-profile for the
//                      drive's fault process. Implied (at 60/h) by any of
//                      the three flags below.
//   --deadline-frac=F  give every online request a deadline of F mean
//                      FIFO service times and shed requests whose ETA is
//                      infeasible (enables admission control)
//   --admission[=N]    admission control: shed on estimator-infeasible
//                      deadlines, and past a queue depth of N when given
//   --breaker          arm the drive health circuit breaker for the
//                      online pass (drive/health_drive.h)
//   --fleet=N          run a fleet serving pass (fleet/fleet_server.h): N
//                      single-cartridge libraries of the chosen drive
//                      family, the same workload size arriving over the
//                      logical segment space, each request routed to the
//                      replica with the lowest estimated service time.
//                      Honors --fault-profile and --breaker (per library).
//   --replicas=K       copies of every logical segment, on distinct
//                      libraries (default 1; requires K <= N)
//   --placement=P      replica placement policy: round-robin|random|
//                      weighted (default round-robin)
//   --optimize-layout  treat the batch as workload heat, run the
//                      tail-anchored PlacementOptimizer (layout/), and
//                      compare the schedule estimate under the proposed
//                      layout against the current one (docs/placement.md)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "serpentine/drive/fault_drive.h"
#include "serpentine/drive/metered_drive.h"
#include "serpentine/drive/model_drive.h"
#include "serpentine/drive/tracing_drive.h"
#include "serpentine/obs/metrics.h"
#include "serpentine/obs/trace.h"
#include "serpentine/sched/estimator.h"
#include "serpentine/sched/local_search.h"
#include "serpentine/sched/registry.h"
#include "serpentine/sched/scheduler.h"
#include "serpentine/drive/fault_injector.h"
#include "serpentine/fleet/fleet_server.h"
#include "serpentine/layout/heat_map.h"
#include "serpentine/layout/placement.h"
#include "serpentine/sim/online_server.h"
#include "serpentine/sim/pipeline.h"
#include "serpentine/sim/recovering_executor.h"
#include "serpentine/tape/locate_cache.h"
#include "serpentine/tape/locate_model.h"
#include "serpentine/util/lrand48.h"
#include "serpentine/workload/trace_io.h"

using namespace serpentine;

namespace {

struct Args {
  std::string algorithm = "loss";
  std::string drive = "dlt4000";
  int32_t tape_seed = 1;
  int32_t seed = 1;
  tape::SegmentId initial = 0;
  int64_t random_n = 0;
  bool from_stdin = false;
  bool improve = false;
  bool rewind = false;
  bool quiet = false;
  bool explain = false;
  std::string workload_path;
  std::string fault_profile;  // empty = no fault execution pass
  int32_t fault_seed = 0;     // 0 = keep the profile's own seed
  std::string trace_out;        // Chrome trace_event JSON output
  std::string metrics_out;      // metrics snapshot JSON output
  int64_t pipeline_batches = 0;  // 0 = no pipelined pass
  double online_rate = 0.0;      // arrivals/hour; 0 = no online pass
  double deadline_frac = 0.0;    // deadlines in mean FIFO service times
  bool admission = false;
  int64_t admission_depth = 0;   // 0 = feasibility shedding only
  bool breaker = false;
  int64_t fleet_libraries = 0;   // 0 = no fleet pass
  int64_t fleet_replicas = 1;
  std::string placement = "round-robin";
  bool optimize_layout = false;
  std::vector<tape::SegmentId> segments;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algorithm=A] [--drive=D] [--tape-seed=N] "
               "[--initial=SEG] [--random=N] [--seed=N] [--stdin] "
               "[--workload=FILE] [--improve] [--rewind] [--explain] "
               "[--quiet] [--fault-profile=none|light|heavy|FILE] "
               "[--fault-seed=N] [--trace=FILE] [--metrics-json=FILE] "
               "[--pipeline=N] [--online-rate=R] [--deadline-frac=F] "
               "[--admission[=N]] [--breaker] [--fleet=N] [--replicas=K] "
               "[--placement=round-robin|random|weighted] "
               "[--optimize-layout] [segment ...]\n",
               argv0);
  return 2;
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--algorithm", &v) && v) {
      args.algorithm = v;
    } else if (ParseFlag(argv[i], "--drive", &v) && v) {
      args.drive = v;
    } else if (ParseFlag(argv[i], "--tape-seed", &v) && v) {
      args.tape_seed = std::atoi(v);
    } else if (ParseFlag(argv[i], "--seed", &v) && v) {
      args.seed = std::atoi(v);
    } else if (ParseFlag(argv[i], "--initial", &v) && v) {
      args.initial = std::atoll(v);
    } else if (ParseFlag(argv[i], "--random", &v) && v) {
      args.random_n = std::atoll(v);
    } else if (ParseFlag(argv[i], "--stdin", &v) && !v) {
      args.from_stdin = true;
    } else if (ParseFlag(argv[i], "--workload", &v) && v) {
      args.workload_path = v;
    } else if (ParseFlag(argv[i], "--fault-profile", &v) && v) {
      args.fault_profile = v;
    } else if (ParseFlag(argv[i], "--fault-seed", &v) && v) {
      args.fault_seed = std::atoi(v);
    } else if (ParseFlag(argv[i], "--trace", &v) && v) {
      args.trace_out = v;
    } else if (ParseFlag(argv[i], "--metrics-json", &v) && v) {
      args.metrics_out = v;
    } else if (ParseFlag(argv[i], "--pipeline", &v) && v) {
      args.pipeline_batches = std::atoll(v);
    } else if (ParseFlag(argv[i], "--online-rate", &v) && v) {
      args.online_rate = std::atof(v);
    } else if (ParseFlag(argv[i], "--deadline-frac", &v) && v) {
      args.deadline_frac = std::atof(v);
    } else if (ParseFlag(argv[i], "--admission", &v)) {
      args.admission = true;
      if (v != nullptr) args.admission_depth = std::atoll(v);
    } else if (ParseFlag(argv[i], "--breaker", &v) && !v) {
      args.breaker = true;
    } else if (ParseFlag(argv[i], "--fleet", &v) && v) {
      args.fleet_libraries = std::atoll(v);
    } else if (ParseFlag(argv[i], "--replicas", &v) && v) {
      args.fleet_replicas = std::atoll(v);
    } else if (ParseFlag(argv[i], "--placement", &v) && v) {
      args.placement = v;
    } else if (ParseFlag(argv[i], "--optimize-layout", &v) && !v) {
      args.optimize_layout = true;
    } else if (ParseFlag(argv[i], "--explain", &v) && !v) {
      args.explain = true;
    } else if (ParseFlag(argv[i], "--improve", &v) && !v) {
      args.improve = true;
    } else if (ParseFlag(argv[i], "--rewind", &v) && !v) {
      args.rewind = true;
    } else if (ParseFlag(argv[i], "--quiet", &v) && !v) {
      args.quiet = true;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else {
      args.segments.push_back(std::atoll(argv[i]));
    }
  }

  tape::TapeParams params;
  tape::DriveTimings timings;
  if (args.drive == "dlt4000") {
    params = tape::Dlt4000TapeParams();
    timings = tape::Dlt4000Timings();
  } else if (args.drive == "dlt7000") {
    params = tape::Dlt7000TapeParams();
    timings = tape::Dlt7000Timings();
  } else if (args.drive == "ibm3590") {
    params = tape::Ibm3590TapeParams();
    timings = tape::Ibm3590Timings();
  } else {
    std::fprintf(stderr, "unknown drive: %s\n", args.drive.c_str());
    return 2;
  }

  auto entry = sched::Registry::Default().Resolve(args.algorithm);
  if (!entry.ok()) {
    std::fprintf(stderr, "%s\n", entry.status().ToString().c_str());
    return 2;
  }

  tape::Dlt4000LocateModel model(
      tape::TapeGeometry::Generate(params, args.tape_seed), timings);
  const tape::TapeGeometry& g = model.geometry();

  if (args.from_stdin) {
    char line[64];
    while (std::fgets(line, sizeof(line), stdin) != nullptr) {
      if (line[0] == '\n' || line[0] == '#') continue;
      args.segments.push_back(std::atoll(line));
    }
  }
  if (args.random_n > 0) {
    Lrand48 rng(args.seed);
    for (int64_t i = 0; i < args.random_n; ++i) {
      args.segments.push_back(rng.NextBounded(g.total_segments()));
    }
  }

  std::vector<sched::Request> requests;
  requests.reserve(args.segments.size());
  for (tape::SegmentId s : args.segments)
    requests.push_back(sched::Request{s, 1});
  if (!args.workload_path.empty()) {
    auto trace = workload::LoadTrace(args.workload_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    requests.insert(requests.end(), trace->begin(), trace->end());
  }
  if (requests.empty()) {
    std::fprintf(stderr, "no requests (pass segments, --stdin, --workload, "
                         "or --random=N)\n");
    return Usage(argv[0]);
  }

  // Observability: install the ambient recorder/registry before planning
  // so scheduler-build spans and counters land in the outputs. Requesting
  // either output also forces an execution pass below (the timeline comes
  // from running the schedule, not estimating it).
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  if (!args.trace_out.empty()) obs::TraceRecorder::SetActive(&recorder);
  if (!args.metrics_out.empty()) obs::MetricsRegistry::SetActive(&registry);

  // One locate cache for the whole planning session: scheduling, Or-opt,
  // and both estimates below share each pair's single plan.
  tape::CachedLocateModel cached(
      model, static_cast<int64_t>(requests.size()) * 16);
  auto schedule = (*entry)->build(cached, args.initial, requests,
                                  (*entry)->options);
  if (!schedule.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 schedule.status().ToString().c_str());
    return 1;
  }
  if (args.improve) sched::ImproveSchedule(cached, &schedule.value());

  sched::EstimateOptions estimate_options;
  estimate_options.rewind_at_end = args.rewind;

  if (!args.quiet && !schedule->full_tape_scan) {
    if (args.explain) {
      std::printf("# step  segment  track/sec  locate_s  case                "
                  "scan_s  read_s\n");
    } else {
      std::printf("# step  segment  track/sec  locate_s\n");
    }
    tape::SegmentId pos = args.initial;
    int step = 0;
    for (const sched::Request& r : schedule->order) {
      tape::Coord c = g.ToCoord(r.segment);
      if (args.explain) {
        auto b = model.ExplainLocate(pos, r.segment);
        std::printf("%6d %8lld %6d/%-3d %9.2f  %-19s %6.1f %7.1f\n", ++step,
                    static_cast<long long>(r.segment), c.track,
                    c.physical_section, b.total_seconds,
                    tape::LocateCaseName(b.locate_case), b.scan_seconds,
                    b.read_seconds);
      } else {
        std::printf("%6d %8lld %6d/%-3d %9.2f\n", ++step,
                    static_cast<long long>(r.segment), c.track,
                    c.physical_section, model.LocateSeconds(pos, r.segment));
      }
      pos = sched::OutPosition(g, r);
    }
  }

  double scheduled =
      sched::EstimateScheduleSeconds(cached, *schedule, estimate_options);
  auto fifo =
      sched::BuildSchedule(cached, args.initial, requests,
                           sched::Algorithm::kFifo);
  double fifo_s =
      sched::EstimateScheduleSeconds(cached, *fifo, estimate_options);
  std::printf("# %zu requests on %s (tape seed %d), algorithm %s%s\n",
              requests.size(), args.drive.c_str(), args.tape_seed,
              args.algorithm.c_str(), args.improve ? "+or-opt" : "");
  std::printf("# estimated execution: %.1f s (%.2f h), %.1f s per request\n",
              scheduled, scheduled / 3600.0, scheduled / requests.size());
  std::printf("# fifo baseline:       %.1f s, speedup %.2fx\n", fifo_s,
              fifo_s / scheduled);

  if (args.optimize_layout) {
    // The batch doubles as the workload sample: its heat trains the
    // optimizer, and the same batch is re-scheduled under the proposed
    // layout to show what re-placement buys this traffic.
    layout::HeatMap heat(g.total_segments());
    heat.RecordBatch(requests);
    layout::PlacementOptimizer optimizer(model);
    layout::OptimizerStats stats;
    layout::Placement proposed = optimizer.Optimize(heat, &stats);
    auto remapped = proposed.RemapBatch(requests);
    auto replaced = (*entry)->build(cached, args.initial,
                                    std::move(remapped), (*entry)->options);
    if (!replaced.ok()) {
      std::fprintf(stderr, "re-placed scheduling failed: %s\n",
                   replaced.status().ToString().c_str());
      return 1;
    }
    if (args.improve) sched::ImproveSchedule(cached, &replaced.value());
    double replaced_s =
        sched::EstimateScheduleSeconds(cached, *replaced, estimate_options);
    std::printf(
        "# layout optimization: %lld hot groups, %lld moved, %lld cap "
        "relaxations, hot-set goodness %.1f -> %.1f s\n",
        static_cast<long long>(stats.hot_groups),
        static_cast<long long>(stats.moved_groups),
        static_cast<long long>(stats.wear_relaxations),
        stats.hot_goodness_before, stats.hot_goodness_after);
    std::printf("# re-placed estimate:  %.1f s, %.2fx vs current layout\n",
                replaced_s, scheduled / replaced_s);
  }

  if (args.pipeline_batches > 0) {
    // Contiguous arrival-order split; the last batch absorbs the remainder.
    int64_t nb = std::min<int64_t>(args.pipeline_batches,
                                   static_cast<int64_t>(requests.size()));
    std::vector<std::vector<sched::Request>> batches(nb);
    size_t per = requests.size() / nb;
    size_t extra = requests.size() % nb;
    size_t at = 0;
    for (int64_t b = 0; b < nb; ++b) {
      size_t take = per + (static_cast<size_t>(b) < extra ? 1 : 0);
      batches[b].assign(requests.begin() + at, requests.begin() + at + take);
      at += take;
    }
    // Builds run on a worker thread against the planning cache while the
    // (model-timed) drive executes on this thread against the raw model —
    // distinct objects, so the overlap is race-free.
    auto builder = [&](int, tape::SegmentId initial,
                       std::vector<sched::Request> batch)
        -> StatusOr<sched::Schedule> {
      auto s =
          (*entry)->build(cached, initial, std::move(batch), (*entry)->options);
      if (s.ok() && args.improve) sched::ImproveSchedule(cached, &s.value());
      return s;
    };
    sim::PipelineOptions popts;
    popts.estimate = estimate_options;
    drive::ModelDrive pdrive(model, args.initial);
    auto piped = sim::RunPipelinedBatches(pdrive, batches, builder, popts);
    if (!piped.ok()) {
      std::fprintf(stderr, "pipelined execution failed: %s\n",
                   piped.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "# pipelined %lld batches: %.3f s scheduling CPU, %.1f s drive time\n",
        static_cast<long long>(nb), piped->build_wall_seconds,
        piped->totals.total_seconds);
    std::printf(
        "#   makespan %.3f s serial -> %.3f s pipelined "
        "(%.3f s of compute hidden, %d/%lld prefetched)\n",
        piped->serial_makespan_seconds, piped->pipelined_makespan_seconds,
        piped->overlap_seconds(), piped->prefetched,
        static_cast<long long>(nb - 1));
  }

  bool online_pass = args.online_rate > 0.0 || args.deadline_frac > 0.0 ||
                     args.admission || args.breaker;
  if (online_pass) {
    // Online serving: the same workload size arriving as a Poisson stream
    // (the batch fixes the load, not the request identities — the server
    // draws its own segments from --seed) served by the chosen algorithm
    // over the full drive stack, with admission control, deadlines, and
    // the drive health breaker as requested.
    sim::OnlineServerConfig config;
    config.arrival_rate_per_hour =
        args.online_rate > 0.0 ? args.online_rate : 60.0;
    config.total_requests = static_cast<int64_t>(requests.size());
    config.algorithm = (*entry)->algorithm;
    config.scheduler_options = (*entry)->options;
    config.seed = args.seed;
    if (!args.fault_profile.empty()) {
      auto profile = drive::LoadFaultProfile(args.fault_profile);
      if (!profile.ok()) {
        std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
        return 2;
      }
      if (args.fault_seed != 0) profile->seed = args.fault_seed;
      config.faults = *profile;
    }
    if (args.deadline_frac > 0.0) {
      config.deadline_seconds =
          args.deadline_frac * fifo_s / static_cast<double>(requests.size());
    }
    config.admission.enabled = args.admission || args.deadline_frac > 0.0;
    config.admission.max_queue_depth = args.admission_depth;
    config.breaker_enabled = args.breaker;
    auto online = sim::RunOnlineServer(model, config);
    if (!online.ok()) {
      std::fprintf(stderr, "online serving failed: %s\n",
                   online.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "# online serving @ %.0f req/h: %lld arrivals, %lld admitted, "
        "%lld shed, %lld completed, %lld failed\n",
        config.arrival_rate_per_hour,
        static_cast<long long>(online->arrivals),
        static_cast<long long>(online->admitted),
        static_cast<long long>(online->shed),
        static_cast<long long>(online->completed),
        static_cast<long long>(online->failed));
    std::printf(
        "#   response p99 %.1f s (mean %.1f s, max %.1f s), utilization "
        "%.2f, throughput %.1f/h\n",
        online->p99_response_seconds, online->mean_response_seconds,
        online->max_response_seconds, online->utilization,
        online->throughput_per_hour);
    if (config.deadline_seconds <
        std::numeric_limits<double>::infinity()) {
      std::printf("#   deadline %.0f s per request: %lld missed, %lld "
                  "shed as infeasible\n",
                  config.deadline_seconds,
                  static_cast<long long>(online->deadline_missed),
                  static_cast<long long>(online->shed));
    }
    if (config.breaker_enabled) {
      std::printf("#   breaker: %lld fast fails, %zu transitions, %.1f s "
                  "waiting out cooldowns\n",
                  static_cast<long long>(online->breaker_fast_fails),
                  online->breaker_transitions.size(),
                  online->breaker_wait_seconds);
    }
  }

  if (args.fleet_libraries > 0) {
    // Fleet serving: N single-cartridge libraries, the same workload size
    // arriving over the logical segment space, routed per request to the
    // cheapest replica.
    auto policy = fleet::PlacementPolicyFromString(args.placement);
    if (!policy.ok()) {
      std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
      return 2;
    }
    fleet::UniformFleet libraries(params, timings,
                                  static_cast<int>(args.fleet_libraries),
                                  /*cartridges_per_library=*/1,
                                  args.tape_seed);
    fleet::FleetConfig config;
    config.serving.arrival_rate_per_hour =
        args.online_rate > 0.0 ? args.online_rate : 60.0;
    config.serving.total_requests = static_cast<int64_t>(requests.size());
    config.serving.algorithm = (*entry)->algorithm;
    config.serving.scheduler_options = (*entry)->options;
    config.serving.seed = args.seed;
    if (!args.fault_profile.empty()) {
      auto profile = drive::LoadFaultProfile(args.fault_profile);
      if (!profile.ok()) {
        std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
        return 2;
      }
      if (args.fault_seed != 0) profile->seed = args.fault_seed;
      config.serving.faults = *profile;
    }
    config.serving.breaker_enabled = args.breaker;
    config.placement.policy = *policy;
    config.placement.replication = static_cast<int>(args.fleet_replicas);
    config.placement.seed = args.seed;
    auto result = fleet::RunFleet(libraries.fleet(), config);
    if (!result.ok()) {
      std::fprintf(stderr, "fleet serving failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "# fleet serving: %lld libraries, replication %lld, placement %s\n",
        static_cast<long long>(args.fleet_libraries),
        static_cast<long long>(args.fleet_replicas),
        fleet::PlacementPolicyName(*policy));
    std::printf(
        "#   %lld arrivals, %lld completed, %lld failed, %lld shed, "
        "%lld failovers\n",
        static_cast<long long>(result->total.arrivals),
        static_cast<long long>(result->total.completed),
        static_cast<long long>(result->total.failed),
        static_cast<long long>(result->total.shed),
        static_cast<long long>(result->failovers));
    std::printf(
        "#   response p99 %.1f s (mean %.1f s), fleet utilization %.2f\n",
        result->total.p99_response_seconds,
        result->total.mean_response_seconds, result->total.utilization);
    std::printf("#   routed per library:");
    for (int64_t n : result->routed_per_library) {
      std::printf(" %lld", static_cast<long long>(n));
    }
    std::printf("\n");
  }

  bool observing = !args.trace_out.empty() || !args.metrics_out.empty();
  if (!args.fault_profile.empty() || observing) {
    std::unique_ptr<drive::FaultInjector> injector;
    int32_t fault_seed = 0;
    if (!args.fault_profile.empty()) {
      auto profile = drive::LoadFaultProfile(args.fault_profile);
      if (!profile.ok()) {
        std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
        return 2;
      }
      if (args.fault_seed != 0) profile->seed = args.fault_seed;
      injector = std::make_unique<drive::FaultInjector>(*profile);
      fault_seed = profile->seed;
    }
    sim::RecoveryOptions recovery;
    recovery.estimate.rewind_at_end = args.rewind;
    // The execution stack: ideal drive, fault process (a passthrough when
    // no profile is set), op meter, tracer outermost so the timeline sees
    // what execution experienced. Schedule repairs still consult the
    // cached believed model.
    drive::ModelDrive base(model);
    drive::FaultDrive faulty(&base, injector.get());
    drive::MeteredDrive metered(&faulty);
    drive::TracingDrive traced(&metered);
    sim::RecoveringExecutor executor(traced, cached, recovery);
    sim::RecoveringExecutionResult res = executor.Execute(*schedule);
    if (!args.fault_profile.empty()) {
      std::printf("# fault execution (%s, seed %d): %.1f s "
                  "(%.1f s recovery, %.2fx estimate)\n",
                  args.fault_profile.c_str(), fault_seed, res.total_seconds,
                  res.recovery_seconds,
                  scheduled > 0 ? res.total_seconds / scheduled : 0.0);
      std::printf("#   serviced %lld/%zu, transient %lld, overshoot %lld, "
                  "reset %lld, permanent %lld, retries %lld, reschedules "
                  "%lld, abandoned %zu\n",
                  static_cast<long long>(res.requests_serviced),
                  schedule->order.size(),
                  static_cast<long long>(res.transient_read_errors),
                  static_cast<long long>(res.locate_overshoots),
                  static_cast<long long>(res.drive_resets),
                  static_cast<long long>(res.permanent_errors),
                  static_cast<long long>(res.retries),
                  static_cast<long long>(res.reschedules),
                  res.abandoned_segments.size());
      const drive::DriveMetrics& m = metered.metrics();
      std::printf("#   drive ops: %lld locates, %lld reads, %lld rewinds "
                  "(%lld segments transferred), busy %.1f s\n",
                  static_cast<long long>(m.locates),
                  static_cast<long long>(m.reads),
                  static_cast<long long>(m.rewinds),
                  static_cast<long long>(m.segments_read), m.busy_seconds());
    }
    if (!args.metrics_out.empty()) {
      metered.metrics().PublishTo(registry, "drive");
    }
  }

  if (!args.trace_out.empty()) {
    auto status = recorder.WriteJson(args.trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (!args.quiet) {
      std::printf("# wrote %lld trace events to %s\n",
                  static_cast<long long>(recorder.event_count()),
                  args.trace_out.c_str());
    }
  }
  if (!args.metrics_out.empty()) {
    auto status = registry.WriteJson(args.metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (!args.quiet) {
      std::printf("# wrote metrics snapshot to %s\n", args.metrics_out.c_str());
    }
  }
  return 0;
}
